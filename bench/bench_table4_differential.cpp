//===--- bench_table4_differential.cpp - Paper Tables III+IV (E7) ---------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Regenerates the large-scale differential-testing campaign: the Table
// III construct grid (atomics, non-atomics, fences, control flow,
// straight-line code; signed/unsigned 8..64-bit) across
// {llvm,gcc} x {-O1,-O2,-O3,-Ofast,(-Og gcc only)} x six architectures,
// reporting positive (+ve) and negative (-ve) differences per cell under
// RC11 -- then re-running under rc11+lb to show every positive
// difference disappear (paper claim 4).
//
// Expected shape (paper Table IV):
//  - +ve > 0 and constant across -O1..-Ofast for Armv8, RISC-V, PPC
//    (the load-buffering family);
//  - Armv7/gcc/-O1 strictly larger than the other Armv7 cells (control
//    dependency removed by the store-diamond merge, masked at -O2+ by
//    the data dependency);
//  - +ve == 0 for x86-64 and MIPS (TSO-like models);
//  - -ve >> +ve everywhere; RISC-V/gcc -ve > RISC-V/llvm -ve (stronger
//    fences).
//
// The default run is scaled down (the paper used 9.2M tests on a 224-core
// ThunderX2 for ~10 hours); set TELECHAT_BENCH_SCALE=full for the whole
// generated suite.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Telechat.h"
#include "diy/Config.h"

#include <map>

using namespace telechat;
using namespace telechat_bench;

namespace {

struct Cell {
  unsigned Pos = 0;
  unsigned Neg = 0;
};

} // namespace

int main() {
  header("Table III/IV: large-scale differential testing of llvm and gcc");
  SuiteConfig Config = SuiteConfig::c11();
  if (!fullScale()) {
    // Scale down the order/width grid but keep every cycle family, so
    // the control-dependency column effect stays visible.
    Config.LoadOrders = {MemOrder::Relaxed, MemOrder::Acquire};
    Config.StoreOrders = {MemOrder::Relaxed, MemOrder::Release};
    Config.Types = {{32, true}, {8, false}};
  }
  std::vector<LitmusTest> Suite = generateSuite(Config);
  printf("input tests: %zu (paper: 167,184; scale with "
         "TELECHAT_BENCH_SCALE=full)\n",
         Suite.size());

  const std::vector<OptLevel> Opts = {OptLevel::O1, OptLevel::O2,
                                      OptLevel::O3, OptLevel::Ofast,
                                      OptLevel::Og};
  const std::vector<CompilerKind> Compilers = {CompilerKind::Llvm,
                                               CompilerKind::Gcc};

  for (const std::string &SourceModel :
       {std::string("rc11"), std::string("rc11+lb")}) {
    printf("\n--- source model: %s ---\n", SourceModel.c_str());
    // cell key: (arch, compiler, opt)
    std::map<std::tuple<Arch, CompilerKind, OptLevel>, Cell> Cells;
    unsigned Compiled = 0;
    // One thread-pooled campaign per cell: the whole suite fans out over
    // the workers, results come back in input order (see runTelechatMany).
    for (Arch A : AllArchs) {
      for (CompilerKind C : Compilers) {
        for (OptLevel O : Opts) {
          if (O == OptLevel::Og && C == CompilerKind::Llvm)
            continue; // clang does not support -Og (paper Table IV)
          TestOptions TO;
          TO.SourceModel = SourceModel;
          std::vector<TelechatResult> Results = runTelechatMany(
              Suite, Profile::current(C, O, A), TO, benchJobs());
          for (const TelechatResult &R : Results) {
            if (!R.ok() || R.timedOut())
              continue;
            ++Compiled;
            Cell &Cl = Cells[{A, C, O}];
            if (R.Compare.K == CompareResult::Kind::Positive &&
                !R.Compare.SourceRace)
              ++Cl.Pos;
            else if (R.Compare.K == CompareResult::Kind::Negative)
              ++Cl.Neg;
          }
        }
      }
    }
    printf("compiled tests checked: %u (paper: 9,027,936)\n", Compiled);
    printf("\n%-26s %5s %9s %9s %9s %9s %9s\n", "", "", "-O1", "-O2",
           "-O3", "-Ofast", "-Og");
    unsigned TotalPos = 0;
    for (Arch A : AllArchs) {
      for (const char *Row : {"+ve", "-ve"}) {
        bool IsPos = Row[0] == '+';
        printf("%-26s %5s", archName(A).c_str(), Row);
        for (OptLevel O : Opts) {
          std::string Text;
          for (CompilerKind C : Compilers) {
            if (O == OptLevel::Og && C == CompilerKind::Llvm) {
              Text += "-";
            } else {
              const Cell &Cl = Cells[{A, C, O}];
              Text += std::to_string(IsPos ? Cl.Pos : Cl.Neg);
            }
            if (C == CompilerKind::Llvm)
              Text += "/";
          }
          printf(" %9s", Text.c_str());
        }
        printf("\n");
      }
    }
    for (const auto &[Key, Cl] : Cells)
      TotalPos += Cl.Pos;
    printf("\ntotal positive differences under %s: %u%s\n",
           SourceModel.c_str(), TotalPos,
           SourceModel == "rc11+lb"
               ? (TotalPos == 0 ? "  <- all disappear, as the paper reports"
                                : "  <- UNEXPECTED: should be zero")
               : "  (load-buffering family on the weak architectures)");
  }
  printf("\nNote: positive differences under RC11 are not bugs in today's\n"
         "compilers -- ISO C23 7.17.3 permits load-to-store reordering\n"
         "(paper §IV-D); they vanish under rc11+lb.\n");
  return 0;
}

//===--- bench_armv7_model_bug.cpp - Paper §IV-E model bug (E8) -----------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Reproduces the Armv7 model bug [35]: a Store Buffering test compiled
// with seq_cst accesses for Armv7 had an outcome the unofficial Armv7
// model allowed, although RC11 (and the hardware the authors checked)
// forbids it. "The Armv7 model was allowing accesses to be reordered
// when it should have been forbidden" -- the DMB barrier failed to order
// writes before subsequent reads. The fix (herd PR #385) restores the
// ordering.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "asmcore/Semantics.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

using namespace telechat;
using namespace telechat_bench;

int main() {
  header("§IV-E: the Armv7 model bug, found with a Store Buffering test");
  LitmusTest SB = classicTest("SB+scs");
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2,
                               Arch::Armv7);

  // Compile once; simulate the compiled test under both model variants.
  TelechatResult R = runTelechat(SB, P);
  if (!R.ok()) {
    printf("pipeline error: %s\n", R.Error.c_str());
    return 1;
  }
  ErrorOr<SimProgram> Lowered = lowerAsmTest(R.OptAsm);
  if (!Lowered) {
    printf("lowering error: %s\n", Lowered.error().c_str());
    return 1;
  }
  SimResult Fixed = simulateProgram(*Lowered, "armv7");
  SimResult Buggy = simulateProgram(*Lowered, "armv7-buggy");

  printf("\nSB with seq_cst accesses, gcc -O2 for Armv7 (DMB-bracketed):\n");
  printf("  outcomes under fixed model:  %zu\n%s", Fixed.Allowed.size(),
         outcomeSetToString(Fixed.Allowed).c_str());
  printf("  outcomes under buggy model:  %zu\n%s", Buggy.Allowed.size(),
         outcomeSetToString(Buggy.Allowed).c_str());

  CompareResult AgainstFixed =
      mcompare(R.SourceSim, Fixed, R.Compiled.KeyMap);
  CompareResult AgainstBuggy =
      mcompare(R.SourceSim, Buggy, R.Compiled.KeyMap);
  bool BuggyLeaks = AgainstBuggy.K == CompareResult::Kind::Positive;
  bool FixedClean = AgainstFixed.K != CompareResult::Kind::Positive;
  printf("\nbuggy model allows the RC11-forbidden SB outcome: %s\n",
         BuggyLeaks ? "yes -> the model bug is visible" : "NO (unexpected)");
  for (const Outcome &W : AgainstBuggy.Witnesses)
    printf("  forbidden-but-allowed: %s\n", W.toString().c_str());
  printf("fixed model (herd PR #385) forbids it again: %s\n",
         FixedClean ? "yes" : "NO (unexpected)");
  printf("\nNote: only Télétchat can find this class of bug -- the\n"
         "state-of-the-art depends on source models alone (§IV-E).\n");
  return BuggyLeaks && FixedClean ? 0 : 1;
}

//===--- BenchUtil.h - Shared helpers for bench binaries --------*- C++ -*-===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared utilities for the bench/ binaries that regenerate the
/// paper's tables and figures. Scale with TELECHAT_BENCH_SCALE=full for
/// the unscaled sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef TELECHAT_BENCH_BENCHUTIL_H
#define TELECHAT_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace telechat_bench {

inline bool fullScale() {
  const char *Env = getenv("TELECHAT_BENCH_SCALE");
  return Env && strcmp(Env, "full") == 0;
}

/// Worker threads for the campaign-style benches; TELECHAT_BENCH_JOBS
/// overrides, default 0 = one per hardware thread.
inline unsigned benchJobs() {
  const char *Env = getenv("TELECHAT_BENCH_JOBS");
  return Env ? unsigned(strtoul(Env, nullptr, 0)) : 0;
}

inline void header(const std::string &Title) {
  printf("\n============================================================\n");
  printf("%s\n", Title.c_str());
  printf("============================================================\n");
}

} // namespace telechat_bench

#endif // TELECHAT_BENCH_BENCHUTIL_H

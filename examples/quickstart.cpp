//===--- quickstart.cpp - Télétchat in one page ---------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Quickstart: write a litmus test as C text, pick a compiler profile,
// run the pipeline, inspect the verdict. This is the paper's Fig. 5 end
// to end:
//
//      S --l2c--> S' --c2s--> O --s2l--> C
//      herd(S, rc11) vs herd(C, aarch64), compared by mcompare.
//
//===----------------------------------------------------------------------===//

#include "core/Telechat.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"

#include <cstdio>

using namespace telechat;

int main() {
  // 1. A litmus test: message passing with release/acquire fences. The
  //    exists-clause asks for the stale-read outcome, which C/C++
  //    forbids -- so a correct compiler must not let it through.
  const char *Source = R"(C quickstart_mp
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_thread_fence(memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\ P1:r1=0)
)";

  ErrorOr<LitmusTest> Test = parseLitmusC(Source);
  if (!Test) {
    fprintf(stderr, "parse error: %s\n", Test.error().c_str());
    return 1;
  }

  // 2. A compiler profile: clang -O2 targeting Armv8 AArch64.
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  printf("profile: %s\n\n", P.name().c_str());

  // 3. Run the pipeline.
  TelechatResult R = runTelechat(*Test, P);
  if (!R.ok()) {
    fprintf(stderr, "pipeline error: %s\n", R.Error.c_str());
    return 1;
  }

  // 4. Inspect the artefacts.
  printf("--- prepared source (l2c, with local-variable augmentation) "
         "---\n%s\n",
         printLitmusC(R.Prepared).c_str());
  printf("--- compiled litmus test after s2l optimisation ---\n");
  printf("(s2l removed %u scaffolding instructions and %u synthetic "
         "locations)\n\n",
         R.OptStats.RemovedInstructions, R.OptStats.RemovedLocations);

  printf("--- outcomes ---\n");
  printf("source under rc11:\n%s",
         outcomeSetToString(R.SourceSim.Allowed).c_str());
  printf("compiled under aarch64:\n%s",
         outcomeSetToString(R.TargetSim.Allowed).c_str());

  // 5. The verdict.
  switch (R.Compare.K) {
  case CompareResult::Kind::Equal:
    printf("\nverdict: outcome sets agree -- compilation preserved "
           "behaviour.\n");
    break;
  case CompareResult::Kind::Negative:
    printf("\nverdict: negative difference -- the compiled program is "
           "strictly stronger (always sound).\n");
    break;
  case CompareResult::Kind::Positive:
    printf("\nverdict: POSITIVE DIFFERENCE -- compiler bug candidate!\n");
    for (const Outcome &W : R.Compare.Witnesses)
      printf("  forbidden outcome observed: %s\n", W.toString().c_str());
    break;
  }
  return 0;
}

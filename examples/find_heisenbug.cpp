//===--- find_heisenbug.cpp - Hunting the Fig. 10 Heisenbug ---------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Walks through the paper's §IV-B story: a message-passing test whose
// second thread increments y with fetch_add and never reads the result.
// On Armv8.1 compilers of the era, the dead result turned the LDADD into
// an ST-form atomic whose read a DMB LD does not order -- and the bug
// only shows when you *don't* look at r1. This example demonstrates both
// sides of the Heisenbug and the augmentation that pins it down.
//
//===----------------------------------------------------------------------===//

#include "core/Telechat.h"
#include "diy/Classics.h"
#include "litmus/Parser.h"

#include <cstdio>

using namespace telechat;

static void report(const char *Label, const TelechatResult &R) {
  if (!R.ok()) {
    printf("%-52s error: %s\n", Label, R.Error.c_str());
    return;
  }
  printf("%-52s %s\n", Label,
         R.isBug() ? "BUG FOUND" : "no bug observed");
  for (const Outcome &W : R.Compare.Witnesses)
    printf("%52s witness %s\n", "", W.toString().c_str());
}

int main() {
  printf("The Heisenbug of paper §IV-B (Fig. 10)\n");
  printf("=======================================\n\n");

  // The era-accurate buggy compiler: Armv8.1 LSE with the STADD and
  // dead-register-zeroing behaviours.
  Profile Buggy = Profile::llvmOldLse(OptLevel::O2);
  printf("compiler under test: %s + LSE + historical bugs\n\n",
         Buggy.name().c_str());

  // Step 1: the classic MP-with-RMW test, *observing* r1 (what test
  // generators historically produced). The compiler keeps r1 alive, the
  // RMW keeps its destination register, ordering holds: nothing to see.
  const char *ObservingR1 = R"(C observe_r1
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r1 = atomic_fetch_add_explicit(y, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_acquire);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=0 /\ P1:r1=1 /\ y=2)
)";
  ErrorOr<LitmusTest> T1 = parseLitmusC(ObservingR1);
  report("1. observe r1 (historical test shape):", runTelechat(*T1, Buggy));

  // Step 2: the same program, but the final state checks y instead of
  // r1 (indirect observation). Now r1 is dead, the compiler emits the
  // ST-form atomic, and the forbidden outcome appears.
  LitmusTest Fig10 = paperFig10();
  report("2. observe y only (Fig. 10 -- indirect):", runTelechat(Fig10, Buggy));

  // Step 3: turning augmentation off masks it again -- there is no
  // surviving local data to compare (the Fig. 9 effect).
  TestOptions NoAug;
  NoAug.AugmentLocals = false;
  report("3. same, without l2c augmentation:",
         runTelechat(Fig10, Buggy, NoAug));

  // Step 4: today's compiler is clean on the same input.
  Profile Fixed = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                   Arch::AArch64);
  Fixed.Features.Lse = true;
  report("4. current compiler, same test:", runTelechat(Fig10, Fixed));

  printf("\n'You only find the bug through indirect observation -- it is "
         "a new kind of Heisenbug!' (paper §IV-B)\n");
  return 0;
}

//===--- custom_model.cpp - Bring your own memory model -------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Télétchat is parameterised over Cat models (paper property 2: a
// general technique must support current *and future* models). This
// example writes a custom Cat model from scratch -- sequential
// consistency, then a deliberately weakened variant -- and uses them as
// oracles over the same litmus test, showing how the choice of source
// model decides what counts as a bug (paper §II-B).
//
//===----------------------------------------------------------------------===//

#include "cat/Eval.h"
#include "diy/Classics.h"
#include "models/Registry.h"
#include "sim/CFrontend.h"
#include "sim/Backend.h"

#include <cstdio>

using namespace telechat;

static const char *MySc = R"CAT(MYSC
(* sequential consistency: po and communication are one total order *)
let com = rf | co | fr
acyclic po | com as sc
empty rmw & (fre; coe) as atomic
)CAT";

static const char *MyWeak = R"CAT(MYWEAK
(* coherence only: per-location SC, nothing across locations *)
acyclic po-loc | rf | co | fr as coherence
empty rmw & (fre; coe) as atomic
)CAT";

int main() {
  ErrorOr<CatModel> Sc = parseModelText(MySc);
  ErrorOr<CatModel> Weak = parseModelText(MyWeak);
  if (!Sc || !Weak) {
    fprintf(stderr, "model parse error: %s\n",
            (!Sc ? Sc.error() : Weak.error()).c_str());
    return 1;
  }

  for (const char *Name : {"SB", "MP", "LB", "CoRR"}) {
    LitmusTest Test = classicTest(Name);
    SimProgram P = lowerLitmusC(Test);
    SimResult UnderSc = simulate(P, *Sc);
    SimResult UnderWeak = simulate(P, *Weak);
    printf("%-6s witness %-34s  my-sc: %-9s my-weak: %s\n", Name,
           Test.Final.P.toString().c_str(),
           finalConditionHolds(P, UnderSc) ? "ALLOWED" : "forbidden",
           finalConditionHolds(P, UnderWeak) ? "ALLOWED" : "forbidden");
  }

  printf("\nCoRR stays forbidden even under the weak model (coherence),\n"
         "while MP/SB/LB relaxations appear as soon as the cross-location\n"
         "axiom is dropped. Swapping oracles like this is exactly how the\n"
         "paper re-ran Table IV under rc11+lb.\n");
  return 0;
}

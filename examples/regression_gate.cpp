//===--- regression_gate.cpp - Automated regression testing ---------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// §IV-F: "we deployed automatic regression testing of Arm Compiler ...
// Télétchat is the first compiler testing tool (for concurrency) to be
// deployed in a production setting." This example is that deployment in
// miniature: a gate that runs a generated suite against the compiler
// profiles a team ships, fails the build on any true positive, and
// prints a summary a CI system can archive. Exit status 0 = gate passed.
//
// Try it with a buggy compiler:   regression_gate --inject-bug
//
//===----------------------------------------------------------------------===//

#include "core/Telechat.h"
#include "diy/Classics.h"
#include "diy/Config.h"

#include <cstdio>
#include <cstring>

using namespace telechat;

int main(int argc, char **argv) {
  bool InjectBug = argc > 1 && strcmp(argv[1], "--inject-bug") == 0;

  // The suite: classics plus the acquire corpus, like a nightly config.
  std::vector<LitmusTest> Suite;
  for (const std::string &N : classicNames())
    Suite.push_back(classicTest(N));
  for (LitmusTest &T : generateSuite(SuiteConfig::c11Acq()))
    Suite.push_back(std::move(T));

  // Profiles under test: the release matrix.
  std::vector<Profile> Matrix;
  for (OptLevel O : {OptLevel::O1, OptLevel::O2, OptLevel::O3}) {
    Profile P = Profile::current(CompilerKind::Llvm, O, Arch::AArch64);
    P.Features.Lse = true;
    if (InjectBug)
      P.Bugs.XchgNoRet = true; // a regression slipped into the branch
    Matrix.push_back(P);
  }
  Profile WithExchange = Matrix[1];
  // Make sure the suite actually exercises the injected bug's code path.
  Suite.push_back(paperFig1());

  printf("regression gate: %zu tests x %zu profiles (ISO oracle "
         "rc11+lb)\n\n",
         Suite.size(), Matrix.size());
  unsigned Ran = 0, Bugs = 0, Timeouts = 0;
  for (const Profile &P : Matrix) {
    for (const LitmusTest &T : Suite) {
      TestOptions O;
      O.SourceModel = "rc11+lb"; // the ISO-faithful oracle: positives
                                 // here are real bugs
      TelechatResult R = runTelechat(T, P, O);
      if (!R.ok())
        continue;
      ++Ran;
      if (R.timedOut()) {
        ++Timeouts;
        continue;
      }
      if (R.isBug()) {
        ++Bugs;
        printf("FAIL %-24s %-18s witness %s\n", T.Name.c_str(),
               P.name().c_str(),
               R.Compare.Witnesses.empty()
                   ? "?"
                   : R.Compare.Witnesses.front().toString().c_str());
      }
    }
  }
  printf("\nran %u checks: %u bug(s), %u timeout(s)\n", Ran, Bugs,
         Timeouts);
  if (Bugs) {
    printf("GATE FAILED -- do not ship this compiler.\n");
    return 2;
  }
  printf("gate passed.\n");
  return 0;
}

//===--- explore_executions.cpp - Candidate executions up close -----------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Uses the herd-style enumerator directly: enumerate the candidate
// executions of a classic test under a model, print each allowed
// execution with its relations, and emit Graphviz for the first one
// (paper Fig. 2). Usage: explore_executions [classic-name] [model].
//
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "events/Dot.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace telechat;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "MP";
  std::string Model = argc > 2 ? argv[2] : "rc11";
  LitmusTest Test = classicTest(Name);
  printf("test %s under model %s\n", Name.c_str(), Model.c_str());
  printf("final condition: %s\n\n", Test.Final.toString().c_str());

  SimOptions Opts;
  Opts.CollectExecutions = true;
  Opts.MaxCollectedExecutions = 8;
  // Shard over all hardware threads: the collected executions (and every
  // other field) are identical to a sequential Jobs=1 run.
  Opts.Jobs = 0;
  SimResult R = simulateC(Test, Model, Opts);
  if (!R.ok()) {
    fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 1;
  }

  printf("statistics: %llu path combos, %llu rf candidates, %llu "
         "value-consistent,\n  %llu co candidates, %llu allowed "
         "executions, %.2f ms\n\n",
         (unsigned long long)R.Stats.PathCombos,
         (unsigned long long)R.Stats.RfCandidates,
         (unsigned long long)R.Stats.ValueConsistent,
         (unsigned long long)R.Stats.CoCandidates,
         (unsigned long long)R.Stats.AllowedExecutions,
         R.Stats.Seconds * 1e3);

  printf("allowed outcomes:\n%s\n", outcomeSetToString(R.Allowed).c_str());

  SimProgram P = lowerLitmusC(Test);
  printf("exists-clause satisfied: %s\n\n",
         finalConditionHolds(P, R) ? "yes (the relaxed outcome is allowed)"
                                   : "no (the model forbids the witness)");

  for (size_t I = 0; I < R.Executions.size() && I < 2; ++I) {
    printf("--- allowed execution %zu ---\n%s\n", I,
           R.Executions[I].toString().c_str());
  }
  if (!R.Executions.empty())
    printf("Graphviz of execution 0 (pipe into `dot -Tpng`):\n%s",
           executionToDot(R.Executions.front(), Name).c_str());
  return 0;
}

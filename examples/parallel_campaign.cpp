//===--- parallel_campaign.cpp - Multi-core campaign example --------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Shows the two levels of parallelism added for campaign throughput:
//
//  1. *inside* one simulation: SimOptions::Jobs shards the candidate
//     space (path combos x rf assignments) over a work-stealing
//     scheduler -- completed runs are bit-identical for any Jobs value;
//  2. *across* tests: runTelechatMany / simulateMany fan a whole corpus
//     out over a thread pool, one test per worker.
//
// Build: cmake --build build --target example_parallel_campaign
//
//===----------------------------------------------------------------------===//

#include "core/Telechat.h"
#include "diy/Classics.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>

using namespace telechat;

int main() {
  // Level 1: one big simulation, sharded. IRIW under SC with all
  // hardware threads; the outcome set is identical to a -j1 run.
  {
    SimOptions Sequential; // Jobs = 1
    SimOptions Sharded;
    Sharded.Jobs = 0; // one worker per hardware thread
    SimResult A = simulateC(classicTest("IRIW"), "rc11", Sequential);
    SimResult B = simulateC(classicTest("IRIW"), "rc11", Sharded);
    printf("IRIW: %zu outcomes sequential, %zu sharded -> %s\n",
           A.Allowed.size(), B.Allowed.size(),
           A.Allowed == B.Allowed ? "bit-identical" : "MISMATCH (bug!)");
  }

  // Level 2: a campaign over every classic litmus test, one pipeline run
  // per pool worker. Results arrive in input order.
  {
    std::vector<LitmusTest> Corpus;
    for (const std::string &Name : classicNames())
      Corpus.push_back(classicTest(Name));
    Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                 Arch::AArch64);
    auto Start = std::chrono::steady_clock::now();
    std::vector<TelechatResult> Results =
        runTelechatMany(Corpus, P, TestOptions(), /*Jobs=*/0);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

    unsigned Bugs = 0, Clean = 0, Errors = 0;
    for (size_t I = 0; I != Corpus.size(); ++I) {
      if (!Results[I].ok()) {
        ++Errors;
        continue;
      }
      if (Results[I].isBug()) {
        ++Bugs;
        printf("  bug candidate: %s\n", Corpus[I].Name.c_str());
      } else {
        ++Clean;
      }
    }
    printf("campaign: %zu tests on %u workers in %.2f s "
           "(%u clean, %u bug candidates, %u errors)\n",
           Corpus.size(), resolveJobs(0), Secs, Clean, Bugs, Errors);
  }
  return 0;
}

//===--- differential_testing.cpp - A mini Table IV campaign --------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// Runs a small differential-testing campaign (paper §IV-D) over the
// classic litmus families, two compilers and three architectures, and
// prints a per-profile summary of positive/negative differences. Try
// changing the source model to "rc11+lb" and watch every positive
// difference disappear.
//
//===----------------------------------------------------------------------===//

#include "core/Telechat.h"
#include "diy/Classics.h"

#include <cstdio>

using namespace telechat;

int main(int argc, char **argv) {
  std::string SourceModel = argc > 1 ? argv[1] : "rc11";
  printf("differential testing of the classics, source model %s\n\n",
         SourceModel.c_str());

  const Arch Targets[] = {Arch::AArch64, Arch::X86_64, Arch::Ppc};
  const CompilerKind Compilers[] = {CompilerKind::Llvm, CompilerKind::Gcc};

  printf("%-22s %6s %6s %6s %6s\n", "profile", "tests", "+ve", "-ve",
         "racy");
  for (Arch A : Targets) {
    for (CompilerKind C : Compilers) {
      Profile P = Profile::current(C, OptLevel::O2, A);
      unsigned Tests = 0, Pos = 0, Neg = 0, Racy = 0;
      for (const std::string &Name : classicNames()) {
        TestOptions O;
        O.SourceModel = SourceModel;
        TelechatResult R = runTelechat(classicTest(Name), P, O);
        if (!R.ok() || R.timedOut())
          continue;
        ++Tests;
        if (R.Compare.SourceRace) {
          ++Racy;
          continue;
        }
        if (R.Compare.K == CompareResult::Kind::Positive) {
          ++Pos;
          printf("  %-20s positive difference on %s: %s\n", P.name().c_str(),
                 Name.c_str(),
                 R.Compare.Witnesses.empty()
                     ? ""
                     : R.Compare.Witnesses.front().toString().c_str());
        } else if (R.Compare.K == CompareResult::Kind::Negative) {
          ++Neg;
        }
      }
      printf("%-22s %6u %6u %6u %6u\n", P.name().c_str(), Tests, Pos, Neg,
             Racy);
    }
  }
  printf("\npositive differences under rc11 are the load-buffering family "
         "(not bugs;\nISO C23 permits them -- rerun with 'rc11+lb' to see "
         "them vanish).\n");
  return 0;
}

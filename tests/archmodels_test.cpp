//===--- archmodels_test.cpp - Architecture model validation --------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the six architecture models against hand-written assembly
/// litmus tests: for each ISA, the canonical relaxed behaviours must be
/// allowed and the canonical fence/ordering idioms must forbid them.
/// These pin the Cat models the way herd's architecture test banks do.
///
//===----------------------------------------------------------------------===//

#include "asmcore/AsmParser.h"
#include "asmcore/Semantics.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

struct ArchCase {
  const char *Name;
  const char *Text;
  bool WitnessAllowed;
};

bool witness(const ArchCase &C) {
  ErrorOr<AsmLitmusTest> T = parseAsmLitmus(C.Text);
  EXPECT_TRUE(T.hasValue()) << (T.hasValue() ? "" : T.error());
  ErrorOr<SimProgram> P = lowerAsmTest(*T);
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error());
  SimResult R = simulateProgram(*P, archModelName(T->TargetArch));
  EXPECT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.TimedOut);
  return finalConditionHolds(*P, R);
}

const ArchCase Cases[] = {
    // --- AArch64 ---
    {"a64_mp_plain_allowed", R"(AArch64 mp
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  str w2, [x0]
  str w2, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  ldr w3, [x0]
  ret
}
exists (P1:X2=1 /\ P1:X3=0)
)",
     true},
    {"a64_mp_dmb_forbidden", R"(AArch64 mpdmb
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  str w2, [x0]
  dmb ish
  str w2, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  dmb ish
  ldr w3, [x0]
  ret
}
exists (P1:X2=1 /\ P1:X3=0)
)",
     false},
    {"a64_mp_relacq_forbidden", R"(AArch64 mpra
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  str w2, [x0]
  stlr w2, [x1]
  ret
}
P1 {
  ldar w2, [x1]
  ldr w3, [x0]
  ret
}
exists (P1:X2=1 /\ P1:X3=0)
)",
     false},
    {"a64_lb_plain_allowed", R"(AArch64 lb
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  ldr w2, [x0]
  mov w3, #1
  str w3, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  mov w3, #1
  str w3, [x0]
  ret
}
exists (P0:X2=1 /\ P1:X2=1)
)",
     true},
    {"a64_lb_data_forbidden", R"(AArch64 lbdata
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  ldr w2, [x0]
  eor w3, w2, w2
  add w3, w3, #1
  str w3, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  eor w3, w2, w2
  add w3, w3, #1
  str w3, [x0]
  ret
}
exists (P0:X2=1 /\ P1:X2=1)
)",
     false},
    {"a64_lb_ctrl_forbidden", R"(AArch64 lbctrl
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  ldr w2, [x0]
  cbnz w2, .L0
.L0:
  mov w3, #1
  str w3, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  cbnz w2, .L1
.L1:
  mov w3, #1
  str w3, [x0]
  ret
}
exists (P0:X2=1 /\ P1:X2=1)
)",
     false},
    {"a64_sb_dmb_forbidden", R"(AArch64 sbdmb
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  str w2, [x0]
  dmb ish
  ldr w3, [x1]
  ret
}
P1 {
  mov w2, #1
  str w2, [x1]
  dmb ish
  ldr w3, [x0]
  ret
}
exists (P0:X3=0 /\ P1:X3=0)
)",
     false},
    {"a64_sb_dmbld_insufficient", R"(AArch64 sbld
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  str w2, [x0]
  dmb ishld
  ldr w3, [x1]
  ret
}
P1 {
  mov w2, #1
  str w2, [x1]
  dmb ishld
  ldr w3, [x0]
  ret
}
exists (P0:X3=0 /\ P1:X3=0)
)",
     true},
    {"a64_stlr_ldar_sb_forbidden", R"(AArch64 sbra
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  stlr w2, [x0]
  ldar w3, [x1]
  ret
}
P1 {
  mov w2, #1
  stlr w2, [x1]
  ldar w3, [x0]
  ret
}
exists (P0:X3=0 /\ P1:X3=0)
)",
     false},
    {"a64_stlr_ldapr_sb_allowed", R"(AArch64 sbpc
{ x = 0; y = 0; P0:x0 = &x; P0:x1 = &y; P1:x0 = &x; P1:x1 = &y; }
P0 {
  mov w2, #1
  stlr w2, [x0]
  ldapr w3, [x1]
  ret
}
P1 {
  mov w2, #1
  stlr w2, [x1]
  ldapr w3, [x0]
  ret
}
exists (P0:X3=0 /\ P1:X3=0)
)",
     true},
    // --- Armv7 ---
    {"v7_mp_dmb_forbidden", R"(ARMv7 v7mp
{ x = 0; y = 0; P0:r0 = &x; P0:r1 = &y; P1:r0 = &x; P1:r1 = &y; }
P0 {
  mov r2, #1
  str r2, [r0]
  dmb ish
  str r2, [r1]
  bx lr
}
P1 {
  ldr r2, [r1]
  dmb ish
  ldr r3, [r0]
  bx lr
}
exists (P1:r2=1 /\ P1:r3=0)
)",
     false},
    {"v7_mp_plain_allowed", R"(ARMv7 v7mpp
{ x = 0; y = 0; P0:r0 = &x; P0:r1 = &y; P1:r0 = &x; P1:r1 = &y; }
P0 {
  mov r2, #1
  str r2, [r0]
  str r2, [r1]
  bx lr
}
P1 {
  ldr r2, [r1]
  ldr r3, [r0]
  bx lr
}
exists (P1:r2=1 /\ P1:r3=0)
)",
     true},
    // --- x86-64 ---
    {"x86_sb_allowed", R"(X86_64 xsb
{ x = 0; y = 0; }
P0 {
  mov eax, 1
  mov [rip+x], eax
  mov ebx, [rip+y]
  ret
}
P1 {
  mov eax, 1
  mov [rip+y], eax
  mov ebx, [rip+x]
  ret
}
exists (P0:rbx=0 /\ P1:rbx=0)
)",
     true},
    {"x86_sb_mfence_forbidden", R"(X86_64 xsbf
{ x = 0; y = 0; }
P0 {
  mov eax, 1
  mov [rip+x], eax
  mfence
  mov ebx, [rip+y]
  ret
}
P1 {
  mov eax, 1
  mov [rip+y], eax
  mfence
  mov ebx, [rip+x]
  ret
}
exists (P0:rbx=0 /\ P1:rbx=0)
)",
     false},
    {"x86_mp_plain_forbidden", R"(X86_64 xmp
{ x = 0; y = 0; }
P0 {
  mov eax, 1
  mov [rip+x], eax
  mov [rip+y], eax
  ret
}
P1 {
  mov eax, [rip+y]
  mov ebx, [rip+x]
  ret
}
exists (P1:rax=1 /\ P1:rbx=0)
)",
     false},
    {"x86_locked_rmw_orders", R"(X86_64 xrmw
{ x = 0; y = 0; }
P0 {
  mov eax, 1
  mov [rip+x], eax
  mov ecx, 0
  lock xadd [rip+y], ecx
  ret
}
P1 {
  mov eax, 1
  mov [rip+y], eax
  mov ebx, [rip+x]
  ret
}
exists (P0:rcx=1 /\ P1:rbx=0)
)",
     true},
    // --- RISC-V ---
    {"rv_mp_fences_forbidden", R"(RISCV rvmp
{ x = 0; y = 0; P0:a0 = &x; P0:a1 = &y; P1:a0 = &x; P1:a1 = &y; }
P0 {
  li a2, 1
  sw a2, 0(a0)
  fence rw, w
  sw a2, 0(a1)
  ret
}
P1 {
  lw a2, 0(a1)
  fence r, rw
  lw a3, 0(a0)
  ret
}
exists (P1:a2=1 /\ P1:a3=0)
)",
     false},
    {"rv_mp_plain_allowed", R"(RISCV rvmpp
{ x = 0; y = 0; P0:a0 = &x; P0:a1 = &y; P1:a0 = &x; P1:a1 = &y; }
P0 {
  li a2, 1
  sw a2, 0(a0)
  sw a2, 0(a1)
  ret
}
P1 {
  lw a2, 0(a1)
  lw a3, 0(a0)
  ret
}
exists (P1:a2=1 /\ P1:a3=0)
)",
     true},
    {"rv_amo_aqrl_sb_forbidden", R"(RISCV rvsb
{ x = 0; y = 0; P0:a0 = &x; P0:a1 = &y; P1:a0 = &x; P1:a1 = &y; }
P0 {
  li a2, 1
  amoswap.w.aqrl a3, a2, (a0)
  lw a4, 0(a1)
  ret
}
P1 {
  li a2, 1
  amoswap.w.aqrl a3, a2, (a1)
  lw a4, 0(a0)
  ret
}
exists (P0:a4=0 /\ P1:a4=0)
)",
     false},
    // --- PowerPC ---
    {"ppc_mp_lwsync_forbidden", R"(PPC pmp
{ x = 0; y = 0; P0:r3 = &x; P0:r4 = &y; P1:r3 = &x; P1:r4 = &y; }
P0 {
  li r5, 1
  stw r5, 0(r3)
  lwsync
  stw r5, 0(r4)
  blr
}
P1 {
  lwz r5, 0(r4)
  lwsync
  lwz r6, 0(r3)
  blr
}
exists (P1:r5=1 /\ P1:r6=0)
)",
     false},
    {"ppc_lb_plain_allowed", R"(PPC plb
{ x = 0; y = 0; P0:r3 = &x; P0:r4 = &y; P1:r3 = &x; P1:r4 = &y; }
P0 {
  lwz r5, 0(r3)
  li r6, 1
  stw r6, 0(r4)
  blr
}
P1 {
  lwz r5, 0(r4)
  li r6, 1
  stw r6, 0(r3)
  blr
}
exists (P0:r5=1 /\ P1:r5=1)
)",
     true},
    {"ppc_sb_lwsync_insufficient", R"(PPC psb
{ x = 0; y = 0; P0:r3 = &x; P0:r4 = &y; P1:r3 = &x; P1:r4 = &y; }
P0 {
  li r5, 1
  stw r5, 0(r3)
  lwsync
  lwz r6, 0(r4)
  blr
}
P1 {
  li r5, 1
  stw r5, 0(r4)
  lwsync
  lwz r6, 0(r3)
  blr
}
exists (P0:r6=0 /\ P1:r6=0)
)",
     true},
    {"ppc_sb_sync_forbidden", R"(PPC psbs
{ x = 0; y = 0; P0:r3 = &x; P0:r4 = &y; P1:r3 = &x; P1:r4 = &y; }
P0 {
  li r5, 1
  stw r5, 0(r3)
  sync
  lwz r6, 0(r4)
  blr
}
P1 {
  li r5, 1
  stw r5, 0(r4)
  sync
  lwz r6, 0(r3)
  blr
}
exists (P0:r6=0 /\ P1:r6=0)
)",
     false},
    // --- MIPS (TSO-like) ---
    {"mips_mp_plain_forbidden", R"(MIPS mmp
{ x = 0; y = 0; P0:s0 = &x; P0:s1 = &y; P1:s0 = &x; P1:s1 = &y; }
P0 {
  li t0, 1
  sw t0, 0(s0)
  sw t0, 0(s1)
  jr ra
}
P1 {
  lw t0, 0(s1)
  lw t1, 0(s0)
  jr ra
}
exists (P1:t0=1 /\ P1:t1=0)
)",
     false},
    {"mips_sb_plain_allowed", R"(MIPS msb
{ x = 0; y = 0; P0:s0 = &x; P0:s1 = &y; P1:s0 = &x; P1:s1 = &y; }
P0 {
  li t0, 1
  sw t0, 0(s0)
  lw t1, 0(s1)
  jr ra
}
P1 {
  li t0, 1
  sw t0, 0(s1)
  lw t1, 0(s0)
  jr ra
}
exists (P0:t1=0 /\ P1:t1=0)
)",
     true},
    {"mips_sb_sync_forbidden", R"(MIPS msbs
{ x = 0; y = 0; P0:s0 = &x; P0:s1 = &y; P1:s0 = &x; P1:s1 = &y; }
P0 {
  li t0, 1
  sw t0, 0(s0)
  sync
  lw t1, 0(s1)
  jr ra
}
P1 {
  li t0, 1
  sw t0, 0(s1)
  sync
  lw t1, 0(s0)
  jr ra
}
exists (P0:t1=0 /\ P1:t1=0)
)",
     false},
};

class ArchModelTest : public testing::TestWithParam<ArchCase> {};

} // namespace

TEST_P(ArchModelTest, WitnessMatchesArchitecture) {
  const ArchCase &C = GetParam();
  EXPECT_EQ(witness(C), C.WitnessAllowed) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Bank, ArchModelTest, testing::ValuesIn(Cases),
    [](const testing::TestParamInfo<ArchCase> &Info) {
      return std::string(Info.param.Name);
    });

//===--- dist_test.cpp - Distributed campaign engine tests ----------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// The contract under test (ISSUE 3 / docs/DISTRIBUTED.md): a campaign
// served to workers over sockets produces results bit-identical to the
// single-process batch drivers -- including after workers die
// mid-campaign (disconnect requeue) or stall (lease-timeout requeue).
// Plus the layers beneath it: wire primitives, frame reassembly, and
// structural serialization round-trips.
//
//===----------------------------------------------------------------------===//

#include "core/Campaign.h"
#include "core/Telechat.h"
#include "dist/CampaignJson.h"
#include "dist/Journal.h"
#include "dist/Protocol.h"
#include "dist/Relay.h"
#include "dist/Serialize.h"
#include "dist/Socket.h"
#include "dist/Wire.h"
#include "dist/Worker.h"
#include "dist/WorkServer.h"
#include "diy/Classics.h"
#include "diy/Generator.h"
#include "litmus/Printer.h"
#include "litmus/Snippet.h"
#include "sim/Backend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

using namespace telechat;

namespace {

//===----------------------------------------------------------------------===//
// Wire layer
//===----------------------------------------------------------------------===//

TEST(WireTest, PrimitivesRoundTrip) {
  WireBuffer B;
  B.appendU8(0xab);
  B.appendU16(0xbeef);
  B.appendU32(0xdeadbeef);
  B.appendU64(0x0123456789abcdefull);
  B.appendF64(-1.5e300);
  B.appendBool(true);
  B.appendString("hello \"wire\"");
  B.appendString("");

  WireCursor C(B.data(), B.size());
  EXPECT_EQ(C.readU8(), 0xab);
  EXPECT_EQ(C.readU16(), 0xbeef);
  EXPECT_EQ(C.readU32(), 0xdeadbeefu);
  EXPECT_EQ(C.readU64(), 0x0123456789abcdefull);
  EXPECT_EQ(C.readF64(), -1.5e300);
  EXPECT_TRUE(C.readBool());
  EXPECT_EQ(C.readString(), "hello \"wire\"");
  EXPECT_EQ(C.readString(), "");
  EXPECT_TRUE(C.ok());
  EXPECT_EQ(C.remaining(), 0u);
}

TEST(WireTest, TruncationFailsInsteadOfReadingGarbage) {
  WireBuffer B;
  B.appendU32(7);
  WireCursor C(B.data(), B.size());
  C.readU64(); // 8 bytes from a 4-byte payload.
  EXPECT_FALSE(C.ok());
  EXPECT_EQ(C.readU32(), 0u); // Failed cursors yield zeros forever.
}

TEST(WireTest, HostileStringLengthFailsCleanly) {
  WireBuffer B;
  B.appendU32(0x7fffffff); // Length prefix far beyond the payload.
  WireCursor C(B.data(), B.size());
  EXPECT_EQ(C.readString(), "");
  EXPECT_FALSE(C.ok());
}

TEST(WireTest, HostileCountIsRejected) {
  WireBuffer B;
  B.appendU32(0x40000000); // "One billion elements", no bytes behind it.
  WireCursor C(B.data(), B.size());
  C.readCount(16);
  EXPECT_FALSE(C.ok());
}

TEST(WireTest, FrameSplitterReassemblesByteByByte) {
  // Two frames, fed one byte at a time: pop() must produce exactly both,
  // in order, regardless of fragmentation.
  WireBuffer P1;
  P1.appendString("first");
  WireBuffer P2;
  P2.appendU64(42);

  std::vector<uint8_t> Stream;
  auto Append = [&Stream](uint8_t Type, const WireBuffer &B) {
    uint32_t Len = uint32_t(B.size()) + 1;
    for (size_t I = 0; I != 4; ++I)
      Stream.push_back(uint8_t(Len >> (8 * I)));
    Stream.push_back(Type);
    Stream.insert(Stream.end(), B.data(), B.data() + B.size());
  };
  Append(uint8_t(Msg::Hello), P1);
  Append(uint8_t(Msg::Result), P2);

  FrameSplitter S;
  std::vector<Frame> Got;
  Frame F;
  for (size_t I = 0; I != Stream.size(); ++I) {
    S.feed(Stream.data() + I, 1);
    while (S.pop(F))
      Got.push_back(std::move(F));
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].Type, uint8_t(Msg::Hello));
  WireCursor C0(Got[0].Payload);
  EXPECT_EQ(C0.readString(), "first");
  EXPECT_EQ(Got[1].Type, uint8_t(Msg::Result));
  WireCursor C1(Got[1].Payload);
  EXPECT_EQ(C1.readU64(), 42u);
  EXPECT_FALSE(S.corrupted());
}

TEST(WireTest, FrameSplitterFlagsOversizedFrames) {
  uint8_t Hostile[4] = {0xff, 0xff, 0xff, 0xff};
  FrameSplitter S;
  S.feed(Hostile, sizeof(Hostile));
  Frame F;
  EXPECT_FALSE(S.pop(F));
  EXPECT_TRUE(S.corrupted());
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

/// Structural round-trip check via the printer (stable for equal ASTs).
void expectTestRoundTrips(const LitmusTest &T) {
  WireBuffer B;
  encodeLitmusTest(B, T);
  WireCursor C(B.data(), B.size());
  LitmusTest Out;
  ASSERT_TRUE(decodeLitmusTest(C, Out)) << T.Name;
  EXPECT_EQ(C.remaining(), 0u) << T.Name;
  EXPECT_EQ(printLitmusC(T), printLitmusC(Out)) << T.Name;
  EXPECT_EQ(T.validate(), Out.validate()) << T.Name;
}

TEST(SerializeTest, ClassicsRoundTrip) {
  for (const std::string &Name : classicNames())
    expectTestRoundTrips(classicTest(Name));
}

TEST(SerializeTest, RandomGeneratedTestsRoundTrip) {
  RandomGenOptions Opts;
  Opts.Seed = 7;
  Opts.Count = 25;
  for (const LitmusTest &T : generateRandomTests(Opts))
    expectTestRoundTrips(T);
}

TEST(SerializeTest, RoundTrippedTestSimulatesIdentically) {
  // The end-to-end property the corpus transport needs: simulating the
  // decoded test equals simulating the original.
  for (const char *Name : {"MP+rel+acq", "IRIW", "LB+ctrls"}) {
    LitmusTest T = classicTest(Name);
    WireBuffer B;
    encodeLitmusTest(B, T);
    WireCursor C(B.data(), B.size());
    LitmusTest Out;
    ASSERT_TRUE(decodeLitmusTest(C, Out));
    SimResult A = simulateC(T, "rc11");
    SimResult Z = simulateC(Out, "rc11");
    EXPECT_EQ(A.Allowed, Z.Allowed) << Name;
    EXPECT_EQ(A.Flags, Z.Flags) << Name;
    EXPECT_EQ(A.Stats.RfCandidates, Z.Stats.RfCandidates) << Name;
  }
}

TEST(SerializeTest, ProfileRoundTripsIncludingBugModel) {
  Profile P = Profile::llvm11(OptLevel::O2, Arch::AArch64);
  ASSERT_TRUE(P.Bugs.any()); // The part profile names cannot encode.
  WireBuffer B;
  encodeProfile(B, P);
  WireCursor C(B.data(), B.size());
  Profile Out;
  ASSERT_TRUE(decodeProfile(C, Out));
  EXPECT_EQ(Out.Compiler, P.Compiler);
  EXPECT_EQ(Out.Opt, P.Opt);
  EXPECT_EQ(Out.Target, P.Target);
  EXPECT_EQ(Out.Features.Lse, P.Features.Lse);
  EXPECT_EQ(Out.Features.Rcpc, P.Features.Rcpc);
  EXPECT_EQ(Out.Features.Lse2, P.Features.Lse2);
  EXPECT_EQ(Out.Bugs.XchgNoRet, P.Bugs.XchgNoRet);
  EXPECT_EQ(Out.Bugs.SeqCst128Ldp, P.Bugs.SeqCst128Ldp);
  EXPECT_EQ(Out.Bugs.Stp128WrongEndian, P.Bugs.Stp128WrongEndian);
  EXPECT_EQ(Out.Bugs.ConstAtomicStore, P.Bugs.ConstAtomicStore);
  EXPECT_EQ(Out.name(), P.name());
}

TEST(SerializeTest, CampaignConfigRoundTrips) {
  CampaignConfig Config;
  Config.P = Profile::current(CompilerKind::Gcc, OptLevel::O3, Arch::RiscV);
  Config.Opts.SourceModel = "rc11+lb";
  Config.Opts.AugmentLocals = false;
  Config.Opts.Sim.MaxSteps = 123456;
  Config.Opts.Sim.RfValuePruning = false;
  Config.Opts.Sim.RfTransformDomain = false;
  Config.Opts.Sim.Backend = SimBackendKind::Solve;
  Config.SimulateOnly = true;
  WireBuffer B;
  encodeCampaignConfig(B, Config);
  WireCursor C(B.data(), B.size());
  CampaignConfig Out;
  ASSERT_TRUE(decodeCampaignConfig(C, Out));
  EXPECT_EQ(Out.P.name(), Config.P.name());
  EXPECT_EQ(Out.Opts.SourceModel, "rc11+lb");
  EXPECT_FALSE(Out.Opts.AugmentLocals);
  EXPECT_EQ(Out.Opts.Sim.MaxSteps, 123456u);
  EXPECT_FALSE(Out.Opts.Sim.RfValuePruning);
  EXPECT_FALSE(Out.Opts.Sim.RfTransformDomain);
  EXPECT_EQ(Out.Opts.Sim.Backend, SimBackendKind::Solve);
  EXPECT_TRUE(Out.SimulateOnly);
}

TEST(SerializeTest, SimOptionsBackendRoundTripsAndRejectsHostile) {
  SimOptions O;
  O.Backend = SimBackendKind::Explore;
  O.Jobs = 3;
  O.ExploreIterations = 4096;
  O.ExploreSeed = 99;
  O.ExploreMaxContextSwitches = 5;
  O.ExploreBudget = 1u << 20;
  WireBuffer B;
  encodeSimOptions(B, O);
  WireCursor C(B.data(), B.size());
  SimOptions Out;
  ASSERT_TRUE(decodeSimOptions(C, Out));
  EXPECT_EQ(C.remaining(), 0u);
  EXPECT_EQ(Out.Backend, SimBackendKind::Explore);
  EXPECT_EQ(Out.Jobs, 3u);
  EXPECT_EQ(Out.ExploreIterations, 4096u);
  EXPECT_EQ(Out.ExploreSeed, 99u);
  EXPECT_EQ(Out.ExploreMaxContextSwitches, 5u);
  EXPECT_EQ(Out.ExploreBudget, 1u << 20);
  // The backend selector sits before the four explore knobs
  // (u64 + u64 + u32 + u64 = 28 trailing bytes); anything past Explore
  // is hostile (a newer peer would have bumped WireVersion instead).
  std::vector<uint8_t> Bytes(B.data(), B.data() + B.size());
  ASSERT_GT(Bytes.size(), 29u);
  Bytes[Bytes.size() - 29] = 4;
  WireCursor Bad(Bytes.data(), Bytes.size());
  EXPECT_FALSE(decodeSimOptions(Bad, Out));
}

TEST(SerializeTest, SimStatsSolverCountersRoundTripAndRejectHostile) {
  SimStats S;
  S.PathCombos = 7;
  S.RfCandidates = 9;
  S.SolveDecisions = 11;
  S.SolvePropagations = 13;
  S.SolveConflicts = 17;
  S.SolveClauses = 19;
  S.ExploreIterations = 23;
  S.ExploreSchedules = 29;
  S.ExploreOutcomesFound = 31;
  S.BackendUsed = uint8_t(SimBackendKind::Solve);
  S.Seconds = 1.5;
  WireBuffer B;
  encodeSimStats(B, S);
  WireCursor C(B.data(), B.size());
  SimStats Out;
  ASSERT_TRUE(decodeSimStats(C, Out));
  EXPECT_EQ(C.remaining(), 0u);
  EXPECT_EQ(Out.PathCombos, 7u);
  EXPECT_EQ(Out.RfCandidates, 9u);
  EXPECT_EQ(Out.SolveDecisions, 11u);
  EXPECT_EQ(Out.SolvePropagations, 13u);
  EXPECT_EQ(Out.SolveConflicts, 17u);
  EXPECT_EQ(Out.SolveClauses, 19u);
  EXPECT_EQ(Out.ExploreIterations, 23u);
  EXPECT_EQ(Out.ExploreSchedules, 29u);
  EXPECT_EQ(Out.ExploreOutcomesFound, 31u);
  EXPECT_EQ(Out.BackendUsed, uint8_t(SimBackendKind::Solve));
  EXPECT_EQ(Out.Seconds, 1.5);
  // BackendUsed sits just before the trailing f64. It is descriptive,
  // not dispatched on: a byte this build does not know (a stats blob
  // from a newer peer with another engine) must decode, not fail --
  // and must *render* as "unknown" rather than aliasing a real engine
  // (or reading out of a name table).
  std::vector<uint8_t> Bytes(B.data(), B.data() + B.size());
  Bytes[Bytes.size() - 9] = 0xC7;
  WireCursor Hostile(Bytes.data(), Bytes.size());
  SimStats HostileOut;
  ASSERT_TRUE(decodeSimStats(Hostile, HostileOut));
  EXPECT_EQ(HostileOut.BackendUsed, 0xC7);
  EXPECT_STREQ(backendUsedName(HostileOut.BackendUsed), "unknown");
  // Auto never runs, so a stats blob claiming it is equally unknown.
  EXPECT_STREQ(backendUsedName(uint8_t(SimBackendKind::Auto)), "unknown");
  EXPECT_STREQ(backendUsedName(uint8_t(SimBackendKind::Explore)),
               "explore");
  // Truncation anywhere fails cleanly rather than misparsing.
  for (size_t N = 0; N < B.size(); N += 7) {
    WireCursor T(B.data(), N);
    SimStats Tmp;
    EXPECT_FALSE(decodeSimStats(T, Tmp));
  }
}

TEST(SerializeTest, TelechatResultRoundTripsTheCampaignSlice) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TelechatResult R = runTelechat(classicTest("MP+rel+acq"), P);
  ASSERT_TRUE(R.ok()) << R.Error;
  WireBuffer B;
  encodeTelechatResult(B, R);
  WireCursor C(B.data(), B.size());
  TelechatResult Out;
  ASSERT_TRUE(decodeTelechatResult(C, Out));
  EXPECT_EQ(C.remaining(), 0u);
  EXPECT_EQ(Out.Error, R.Error);
  EXPECT_EQ(Out.SourceSim.Allowed, R.SourceSim.Allowed);
  EXPECT_EQ(Out.SourceSim.Flags, R.SourceSim.Flags);
  EXPECT_EQ(Out.SourceSim.Stats.RfCandidates, R.SourceSim.Stats.RfCandidates);
  EXPECT_EQ(Out.SourceSim.Stats.RfSourcesPruned,
            R.SourceSim.Stats.RfSourcesPruned);
  EXPECT_EQ(Out.SourceSim.Stats.RfSourcesPrunedCopy,
            R.SourceSim.Stats.RfSourcesPrunedCopy);
  EXPECT_EQ(Out.SourceSim.Stats.RfSourcesPrunedXform,
            R.SourceSim.Stats.RfSourcesPrunedXform);
  EXPECT_EQ(Out.SourceSim.Stats.Seconds, R.SourceSim.Stats.Seconds);
  EXPECT_EQ(Out.TargetSim.Allowed, R.TargetSim.Allowed);
  EXPECT_EQ(Out.Compare.K, R.Compare.K);
  EXPECT_EQ(Out.Compare.SourceRace, R.Compare.SourceRace);
  EXPECT_EQ(Out.Compare.Witnesses.size(), R.Compare.Witnesses.size());
  EXPECT_EQ(Out.OptStats.RemovedInstructions,
            R.OptStats.RemovedInstructions);
}

TEST(SerializeTest, TruncatedResultFailsDecode) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TelechatResult R = runTelechat(classicTest("MP"), P);
  WireBuffer B;
  encodeTelechatResult(B, R);
  for (size_t Cut : {size_t(0), B.size() / 2, B.size() - 1}) {
    WireCursor C(B.data(), Cut);
    TelechatResult Out;
    EXPECT_FALSE(decodeTelechatResult(C, Out)) << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Campaign unit queue (shared local/remote executor)
//===----------------------------------------------------------------------===//

TEST(CampaignQueueTest, BadConfigIndexYieldsErrorResult) {
  CampaignUnit U;
  U.Test = classicTest("MP");
  U.Config = 3;
  TelechatResult R = runCampaignUnit(U, {});
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("config 3"), std::string::npos);
}

TEST(CampaignQueueTest, CrossProductUnitsCoverEveryPair) {
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB")};
  std::vector<CampaignUnit> Units =
      makeCampaignUnits(Tests, /*NumConfigs=*/3, /*Cross=*/true);
  ASSERT_EQ(Units.size(), 6u);
  for (size_t I = 0; I != Units.size(); ++I) {
    EXPECT_EQ(Units[I].Id, I);
    EXPECT_EQ(Units[I].Config, I % 3);
    EXPECT_EQ(Units[I].Test.Name, Tests[I / 3].Name);
  }
}

//===----------------------------------------------------------------------===//
// Loopback campaigns
//===----------------------------------------------------------------------===//

/// A small mixed corpus that exercises compile+simulate+mcompare.
std::vector<LitmusTest> loopbackCorpus() {
  std::vector<LitmusTest> Tests;
  for (const char *Name :
       {"MP", "MP+rel+acq", "SB", "LB", "2+2W", "WRC", "CoRR", "CoWW"})
    Tests.push_back(classicTest(Name));
  RandomGenOptions Opts;
  Opts.Seed = 42;
  Opts.Count = 4;
  for (const LitmusTest &T : generateRandomTests(Opts))
    Tests.push_back(T);
  return Tests;
}

/// Everything that must match between a local and a distributed unit
/// result under the determinism contract (Seconds excluded by design).
void expectUnitIdentical(const TelechatResult &L, const TelechatResult &D,
                         const std::string &What) {
  EXPECT_EQ(L.Error, D.Error) << What;
  EXPECT_EQ(L.SourceSim.Allowed, D.SourceSim.Allowed) << What;
  EXPECT_EQ(L.SourceSim.Flags, D.SourceSim.Flags) << What;
  EXPECT_EQ(L.SourceSim.TimedOut, D.SourceSim.TimedOut) << What;
  EXPECT_EQ(L.SourceSim.Stats.RfCandidates, D.SourceSim.Stats.RfCandidates)
      << What;
  EXPECT_EQ(L.SourceSim.Stats.AllowedExecutions,
            D.SourceSim.Stats.AllowedExecutions)
      << What;
  EXPECT_EQ(L.TargetSim.Allowed, D.TargetSim.Allowed) << What;
  EXPECT_EQ(L.TargetSim.Flags, D.TargetSim.Flags) << What;
  EXPECT_EQ(L.TargetSim.Stats.RfCandidates, D.TargetSim.Stats.RfCandidates)
      << What;
  EXPECT_EQ(L.Compare.K, D.Compare.K) << What;
  EXPECT_EQ(L.Compare.SourceRace, D.Compare.SourceRace) << What;
  EXPECT_EQ(L.Compare.TargetFlags, D.Compare.TargetFlags) << What;
  ASSERT_EQ(L.Compare.Witnesses.size(), D.Compare.Witnesses.size()) << What;
  for (size_t W = 0; W != L.Compare.Witnesses.size(); ++W)
    EXPECT_EQ(L.Compare.Witnesses[W], D.Compare.Witnesses[W]) << What;
  EXPECT_EQ(L.isBug(), D.isBug()) << What;
  EXPECT_EQ(L.OptStats.RemovedInstructions, D.OptStats.RemovedInstructions)
      << What;
}

TEST(LoopbackCampaignTest, TwoWorkersBitIdenticalToLocalDriver) {
  std::vector<LitmusTest> Tests = loopbackCorpus();
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions O;
  std::vector<TelechatResult> Local = runTelechatMany(Tests, P, O, 4);

  std::vector<CampaignConfig> Configs{{P, O, false}};
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);
  WorkServer Server(Units, Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  WOpts.BatchSize = 3;
  std::thread W1([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  std::thread W2([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  W1.join();
  W2.join();
  Srv.join();

  ASSERT_EQ(Report.Results.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I)
    expectUnitIdentical(Local[I], Report.Results[I], Tests[I].Name);
  // And the deterministic JSON artefact is byte-identical, which is the
  // gate the CI smoke job applies to the real binaries.
  EXPECT_EQ(campaignResultsJson(Units, Configs, Local),
            campaignResultsJson(Units, Configs, Report.Results));
}

TEST(LoopbackCampaignTest, KilledWorkerLeasesAreReassigned) {
  std::vector<LitmusTest> Tests = loopbackCorpus();
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions O;
  std::vector<TelechatResult> Local = runTelechatMany(Tests, P, O, 4);

  std::vector<CampaignConfig> Configs{{P, O, false}};
  WorkServer Server(makeCampaignUnits(Tests), Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  // Worker A leases a 4-unit batch but dies after delivering 2 results:
  // the other 2 leases must be re-issued. A runs alone first so the
  // batch grab is deterministic.
  WorkerOptions Doomed;
  Doomed.Jobs = 2;
  Doomed.BatchSize = 4;
  Doomed.KillAfterResults = 2;
  ErrorOr<WorkerRunStats> AStats =
      runCampaignWorker("127.0.0.1", Port, Doomed);
  ASSERT_TRUE(AStats.hasValue()) << AStats.error();
  EXPECT_TRUE(AStats->Killed);
  EXPECT_EQ(AStats->UnitsCompleted, 2u);

  // Worker B mops up the rest, including the re-issued leases.
  WorkerOptions Healthy;
  Healthy.Jobs = 2;
  ErrorOr<WorkerRunStats> BStats =
      runCampaignWorker("127.0.0.1", Port, Healthy);
  ASSERT_TRUE(BStats.hasValue()) << BStats.error();
  EXPECT_TRUE(BStats->CleanDone);
  Srv.join();

  EXPECT_GE(Report.Requeues, 2u) << "the killed worker held 2 leases";
  ASSERT_EQ(Report.Results.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I)
    expectUnitIdentical(Local[I], Report.Results[I], Tests[I].Name);
}

TEST(LoopbackCampaignTest, StalledLeaseTimesOutAndReassigns) {
  std::vector<LitmusTest> Tests = loopbackCorpus();
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions O;
  std::vector<TelechatResult> Local = runTelechatMany(Tests, P, O, 4);

  std::vector<CampaignConfig> Configs{{P, O, false}};
  WorkServerOptions SOpts;
  SOpts.LeaseTimeoutSeconds = 0.3; // Aggressive: the stall is the test.
  WorkServer Server(makeCampaignUnits(Tests), Configs, SOpts);
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  // A zombie client: completes the handshake, leases two units, then
  // goes silent without disconnecting -- only the lease timeout can
  // recover its units.
  ErrorOr<TcpSocket> Zombie = tcpConnect("127.0.0.1", Port, 5.0);
  ASSERT_TRUE(Zombie.hasValue()) << Zombie.error();
  {
    WireBuffer B;
    B.appendU32(WireMagic);
    B.appendU16(WireVersion);
    B.appendU32(1);
    ASSERT_TRUE(sendFrame(*Zombie, uint8_t(Msg::Hello), B));
    ErrorOr<Frame> Ack = recvFrame(*Zombie);
    ASSERT_TRUE(Ack.hasValue()) << Ack.error();
    ASSERT_EQ(Ack->Type, uint8_t(Msg::HelloAck));
    WireBuffer G;
    G.appendU32(2);
    ASSERT_TRUE(sendFrame(*Zombie, uint8_t(Msg::GetWork), G));
    ErrorOr<Frame> Work = recvFrame(*Zombie);
    ASSERT_TRUE(Work.hasValue()) << Work.error();
    ASSERT_EQ(Work->Type, uint8_t(Msg::Work));
  } // ... and never answers again.

  WorkerOptions Healthy;
  Healthy.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Port, Healthy);
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  Srv.join();

  EXPECT_GE(Report.Requeues, 2u) << "the zombie's leases must expire";
  ASSERT_EQ(Report.Results.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I)
    expectUnitIdentical(Local[I], Report.Results[I], Tests[I].Name);
}

TEST(LoopbackCampaignTest, SimulateOnlyCampaignMatchesSimulateC) {
  std::vector<LitmusTest> Tests;
  for (const char *Name : {"MP", "SB", "LB", "IRIW"})
    Tests.push_back(classicTest(Name));
  CampaignConfig Config;
  Config.SimulateOnly = true;
  Config.Opts.SourceModel = "rc11";
  WorkServer Server(makeCampaignUnits(Tests), {Config},
                    WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  std::thread W([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  W.join();
  Srv.join();

  ASSERT_EQ(Report.Results.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I) {
    SimResult Ref = simulateC(Tests[I], "rc11");
    const SimResult &Got = Report.Results[I].SourceSim;
    EXPECT_EQ(Ref.Allowed, Got.Allowed) << Tests[I].Name;
    EXPECT_EQ(Ref.Flags, Got.Flags) << Tests[I].Name;
    EXPECT_EQ(Ref.Stats.RfCandidates, Got.Stats.RfCandidates)
        << Tests[I].Name;
    // SimulateOnly skips the pipeline: target side stays empty.
    EXPECT_TRUE(Report.Results[I].TargetSim.Allowed.empty());
  }
}

TEST(LoopbackCampaignTest, ExploreCampaignDrillIsSoundAndAccounted) {
  // The budget-split drill: the same corpus crossed with an exhaustive
  // config and an explore config. The explore target must stay a sound
  // subset of its exhaustive twin, must never report Negative (mcompare
  // downgrades that to CoverageGap in subset mode), and the engine JSON
  // must account both unit populations plus the schedule counters.
  std::vector<LitmusTest> Tests;
  for (const char *Name : {"MP", "SB", "LB", "IRIW"})
    Tests.push_back(classicTest(Name));
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  CampaignConfig Exhaustive{P, TestOptions(), false};
  CampaignConfig Explored = Exhaustive;
  Explored.Opts.Sim.Backend = SimBackendKind::Explore;
  std::vector<CampaignConfig> Configs{Exhaustive, Explored};
  std::vector<CampaignUnit> Units =
      makeCampaignUnits(Tests, uint32_t(Configs.size()), /*Cross=*/true);

  WorkServer Server(Units, Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  std::thread W([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  W.join();
  Srv.join();

  ASSERT_EQ(Report.Results.size(), Units.size());
  for (size_t T = 0; T != Tests.size(); ++T) {
    const TelechatResult &Exh = Report.Results[T * Configs.size()];
    const TelechatResult &Dyn = Report.Results[T * Configs.size() + 1];
    ASSERT_EQ(Exh.Error, "") << Tests[T].Name;
    ASSERT_EQ(Dyn.Error, "") << Tests[T].Name;
    // The source side is the comparison oracle: never explored.
    EXPECT_NE(Dyn.SourceSim.Stats.BackendUsed,
              uint8_t(SimBackendKind::Explore))
        << Tests[T].Name;
    EXPECT_EQ(Dyn.TargetSim.Stats.BackendUsed,
              uint8_t(SimBackendKind::Explore))
        << Tests[T].Name;
    EXPECT_GT(Dyn.TargetSim.Stats.ExploreIterations, 0u) << Tests[T].Name;
    for (const Outcome &O : Dyn.TargetSim.Allowed)
      EXPECT_TRUE(Exh.TargetSim.Allowed.count(O))
          << Tests[T].Name << ": explore target outcome [" << O.toString()
          << "] outside the exhaustive target set";
    EXPECT_NE(Dyn.Compare.K, CompareResult::Kind::Negative)
        << Tests[T].Name;
    if (Dyn.Compare.K == CompareResult::Kind::Positive)
      EXPECT_EQ(Exh.Compare.K, CompareResult::Kind::Positive)
          << Tests[T].Name << ": explore invented a positive difference";
    // Determinism gate: the distributed unit matches its local twin.
    expectUnitIdentical(runCampaignUnit(Units[T * Configs.size() + 1],
                                        Configs),
                        Dyn, Tests[T].Name);
  }

  // Engine JSON splits the populations and carries live counters.
  std::string Engine = campaignEngineJson(Report);
  size_t At = Engine.find("\"explore\": {\"explored_units\": 4, "
                          "\"exhaustive_units\": 4, \"iterations\": ");
  ASSERT_NE(At, std::string::npos) << Engine;
  std::string Tail = Engine.substr(At);
  EXPECT_EQ(Tail.find("\"iterations\": 0,"), std::string::npos) << Engine;
  EXPECT_NE(Tail.find("\"coverage_gaps\": "), std::string::npos);
}

TEST(LoopbackCampaignTest, EmptyCorpusFinishesWithoutWorkers) {
  WorkServer Server(std::vector<CampaignUnit>{}, {CampaignConfig{}},
                    WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  CampaignReport Report = Server.run(); // Must return, not block.
  EXPECT_EQ(Report.Results.size(), 0u);
  EXPECT_EQ(Report.Requeues, 0u);
}

TEST(LoopbackCampaignTest, VersionMismatchIsRefused) {
  std::vector<LitmusTest> Tests = {classicTest("MP")};
  WorkServer Server(makeCampaignUnits(Tests), {CampaignConfig{}},
                    WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  std::thread Srv([&] { Server.run(); });

  ErrorOr<TcpSocket> Bad = tcpConnect("127.0.0.1", Port, 5.0);
  ASSERT_TRUE(Bad.hasValue()) << Bad.error();
  WireBuffer B;
  B.appendU32(WireMagic);
  B.appendU16(WireVersion + 1); // From the future.
  B.appendU32(1);
  ASSERT_TRUE(sendFrame(*Bad, uint8_t(Msg::Hello), B));
  ErrorOr<Frame> Reply = recvFrame(*Bad);
  ASSERT_TRUE(Reply.hasValue()) << Reply.error();
  EXPECT_EQ(Reply->Type, uint8_t(Msg::Error));
  WireCursor C(Reply->Payload);
  EXPECT_NE(C.readString().find("version mismatch"), std::string::npos);
  Bad->close();

  // A well-versioned worker still completes the campaign.
  WorkerOptions WOpts;
  WOpts.Jobs = 1;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Port, WOpts);
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_TRUE(Stats->CleanDone);
  Srv.join();
}

TEST(WorkerTest, ConnectFailureIsAnError) {
  WorkerOptions Opts;
  Opts.ConnectRetrySeconds = 0.0;
  // Port 1 on loopback: reserved, nothing listens there.
  ErrorOr<WorkerRunStats> Stats = runCampaignWorker("127.0.0.1", 1, Opts);
  EXPECT_FALSE(Stats.hasValue());
}

//===----------------------------------------------------------------------===//
// Generative campaigns (units streamed off the generator)
//===----------------------------------------------------------------------===//

/// A generator spec small enough to execute the full pipeline quickly.
RandomGenOptions genSpec(uint64_t Seed = 21, unsigned Count = 4) {
  RandomGenOptions G;
  G.Seed = Seed;
  G.Count = Count;
  return G;
}

std::vector<CampaignConfig> pipelineConfig() {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  return {{P, TestOptions(), false}};
}

struct LocalRun {
  std::vector<CampaignUnitMeta> Meta;
  std::vector<TelechatResult> Results;
};

/// Drains a streamed generator campaign over the local pool, the way
/// `telechat --campaign --gen-seed` does.
LocalRun runStreamedLocal(const RandomGenOptions &G,
                          const std::vector<CampaignConfig> &Configs) {
  GeneratorUnitSource Source(G, uint32_t(Configs.size()));
  LocalRun R;
  R.Results.resize(size_t(Source.sizeHint()));
  R.Meta.resize(size_t(Source.sizeHint()));
  ThreadPool Pool(4);
  runCampaignUnits(Source, Configs, Pool,
                   [&](const CampaignUnit &U, TelechatResult Res) {
                     R.Results[U.Id] = std::move(Res);
                     R.Meta[U.Id] = CampaignUnitMeta{U.Test.Name, U.Config};
                   });
  R.Results.resize(size_t(Source.produced()));
  R.Meta.resize(size_t(Source.produced()));
  return R;
}

TEST(GeneratorCampaignTest, SourceIdsAreTestMajor) {
  // The streamed crossing must assign exactly the ids the materialised
  // crossing would: that identity is what makes streamed and
  // pre-materialised campaigns merge bit-identically.
  RandomGenOptions G = genSpec(5, 6);
  std::vector<CampaignUnit> Materialised =
      makeCampaignUnits(generateRandomTests(G), /*NumConfigs=*/3,
                        /*Cross=*/true);
  GeneratorUnitSource Source(G, 3);
  CampaignUnit U;
  size_t I = 0;
  while (Source.next(U)) {
    ASSERT_LT(I, Materialised.size());
    EXPECT_EQ(U.Id, Materialised[I].Id);
    EXPECT_EQ(U.Config, Materialised[I].Config);
    EXPECT_EQ(printLitmusC(U.Test), printLitmusC(Materialised[I].Test));
    ++I;
  }
  EXPECT_EQ(I, Materialised.size());
  EXPECT_EQ(Source.produced(), Materialised.size());
}

TEST(GeneratorCampaignTest, StreamedLocalRunMatchesMaterialised) {
  // The differential determinism gate: the same (seed, count, configs)
  // through GeneratorUnitSource and through a pre-materialised
  // VectorUnitSource must produce byte-equal campaign JSON.
  RandomGenOptions G = genSpec();
  std::vector<CampaignConfig> Configs = pipelineConfig();

  std::vector<CampaignUnit> Units = makeCampaignUnits(
      generateRandomTests(G), uint32_t(Configs.size()), true);
  std::vector<TelechatResult> MatResults(Units.size());
  {
    VectorUnitSource Source(Units);
    ThreadPool Pool(4);
    runCampaignUnits(Source, Configs, Pool,
                     [&](const CampaignUnit &U, TelechatResult R) {
                       MatResults[U.Id] = std::move(R);
                     });
  }

  LocalRun Streamed = runStreamedLocal(G, Configs);
  ASSERT_EQ(Streamed.Results.size(), Units.size());
  EXPECT_EQ(campaignResultsJson(Streamed.Meta, Configs, Streamed.Results),
            campaignResultsJson(Units, Configs, MatResults));
}

TEST(GeneratorCampaignTest, StreamedServedCampaignMatchesLocalStream) {
  // And over the wire: a 2-worker loopback campaign leasing units
  // straight off the generator merges byte-identically to the local
  // streamed run.
  RandomGenOptions G = genSpec(42, 5);
  std::vector<CampaignConfig> Configs = pipelineConfig();
  LocalRun Local = runStreamedLocal(G, Configs);

  WorkServer Server(
      std::make_unique<GeneratorUnitSource>(G, uint32_t(Configs.size())),
      Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  WOpts.BatchSize = 2;
  std::thread W1([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  std::thread W2([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  W1.join();
  W2.join();
  Srv.join();

  EXPECT_TRUE(Report.Error.empty()) << Report.Error;
  ASSERT_EQ(Report.Results.size(), Local.Results.size());
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, Configs, Report.Results),
            campaignResultsJson(Local.Meta, Configs, Local.Results));
}

//===----------------------------------------------------------------------===//
// Generator-spec and source-spec records
//===----------------------------------------------------------------------===//

TEST(SerializeTest, RandomGenOptionsRoundTrip) {
  RandomGenOptions O;
  O.Seed = 0xfeedface12345678ull;
  O.Count = 123;
  O.MaxEdges = 9;
  O.LoadOrders = {MemOrder::Acquire, MemOrder::Relaxed};
  O.StoreOrders = {MemOrder::SeqCst};
  WireBuffer B;
  encodeRandomGenOptions(B, O);
  WireCursor C(B.data(), B.size());
  RandomGenOptions Out;
  ASSERT_TRUE(decodeRandomGenOptions(C, Out));
  EXPECT_EQ(C.remaining(), 0u);
  EXPECT_EQ(Out.Seed, O.Seed);
  EXPECT_EQ(Out.Count, O.Count);
  EXPECT_EQ(Out.MaxEdges, O.MaxEdges);
  EXPECT_EQ(Out.LoadOrders, O.LoadOrders);
  EXPECT_EQ(Out.StoreOrders, O.StoreOrders);
}

TEST(SerializeTest, HostileRandomGenOptionsAreRejected) {
  RandomGenOptions O;
  WireBuffer B;
  encodeRandomGenOptions(B, O);
  // Truncations at every prefix fail instead of yielding garbage.
  for (size_t Cut = 0; Cut != B.size(); ++Cut) {
    WireCursor C(B.data(), Cut);
    RandomGenOptions Out;
    EXPECT_FALSE(decodeRandomGenOptions(C, Out)) << "cut at " << Cut;
  }
  {
    // Empty order pool: nothing to draw from.
    WireBuffer E;
    E.appendU64(1);
    E.appendU32(4);
    E.appendU32(6);
    E.appendU32(0); // load pool: zero entries
    E.appendU32(1);
    E.appendU8(uint8_t(MemOrder::Relaxed));
    WireCursor C(E.data(), E.size());
    RandomGenOptions Out;
    EXPECT_FALSE(decodeRandomGenOptions(C, Out));
  }
  {
    // Out-of-enum memory order.
    WireBuffer E;
    E.appendU64(1);
    E.appendU32(4);
    E.appendU32(6);
    E.appendU32(1);
    E.appendU8(uint8_t(MemOrder::SeqCst) + 1);
    E.appendU32(1);
    E.appendU8(uint8_t(MemOrder::Relaxed));
    WireCursor C(E.data(), E.size());
    RandomGenOptions Out;
    EXPECT_FALSE(decodeRandomGenOptions(C, Out));
  }
  {
    // A hostile edge cap sizes a per-attempt allocation in the
    // generator: refuse it at decode, like the pools.
    WireBuffer E;
    E.appendU64(1);
    E.appendU32(4);
    E.appendU32(0xffffffffu);
    E.appendU32(1);
    E.appendU8(uint8_t(MemOrder::Relaxed));
    E.appendU32(1);
    E.appendU8(uint8_t(MemOrder::Relaxed));
    WireCursor C(E.data(), E.size());
    RandomGenOptions Out;
    EXPECT_FALSE(decodeRandomGenOptions(C, Out));
  }
}

TEST(SerializeTest, CampaignSourceSpecRoundTripsBothKinds) {
  {
    CampaignSourceSpec S;
    S.K = CampaignSourceSpec::Kind::Generator;
    S.Gen = genSpec(77, 11);
    S.NumConfigs = 3;
    WireBuffer B;
    encodeCampaignSourceSpec(B, S);
    WireCursor C(B.data(), B.size());
    CampaignSourceSpec Out;
    ASSERT_TRUE(decodeCampaignSourceSpec(C, Out));
    EXPECT_EQ(C.remaining(), 0u);
    EXPECT_EQ(Out.K, S.K);
    EXPECT_EQ(Out.NumConfigs, 3u);
    EXPECT_EQ(Out.Gen.Seed, 77u);
    EXPECT_EQ(Out.Gen.Count, 11u);
    // The decoded spec rebuilds the identical stream.
    CampaignUnit A, Z;
    auto SrcA = S.makeSource();
    auto SrcZ = Out.makeSource();
    while (SrcA->next(A)) {
      ASSERT_TRUE(SrcZ->next(Z));
      EXPECT_EQ(A.Id, Z.Id);
      EXPECT_EQ(printLitmusC(A.Test), printLitmusC(Z.Test));
    }
    EXPECT_FALSE(SrcZ->next(Z));
  }
  {
    CampaignSourceSpec S; // Corpus kind.
    S.Units = makeCampaignUnits({classicTest("MP"), classicTest("SB")});
    WireBuffer B;
    encodeCampaignSourceSpec(B, S);
    WireCursor C(B.data(), B.size());
    CampaignSourceSpec Out;
    ASSERT_TRUE(decodeCampaignSourceSpec(C, Out));
    ASSERT_EQ(Out.Units.size(), 2u);
    EXPECT_EQ(Out.Units[1].Test.Name, S.Units[1].Test.Name);
  }
}

TEST(SerializeTest, HostileSourceSpecsAreRejected) {
  {
    WireBuffer B; // Unknown kind byte.
    B.appendU8(7);
    B.appendU32(1);
    WireCursor C(B.data(), B.size());
    CampaignSourceSpec Out;
    EXPECT_FALSE(decodeCampaignSourceSpec(C, Out));
  }
  {
    WireBuffer B; // Zero-wide config crossing.
    B.appendU8(uint8_t(CampaignSourceSpec::Kind::Generator));
    B.appendU32(0);
    encodeRandomGenOptions(B, RandomGenOptions());
    WireCursor C(B.data(), B.size());
    CampaignSourceSpec Out;
    EXPECT_FALSE(decodeCampaignSourceSpec(C, Out));
  }
  {
    WireBuffer B; // Hostile unit count with no bytes behind it.
    B.appendU8(uint8_t(CampaignSourceSpec::Kind::Corpus));
    B.appendU32(1);
    B.appendU32(0x40000000);
    WireCursor C(B.data(), B.size());
    CampaignSourceSpec Out;
    EXPECT_FALSE(decodeCampaignSourceSpec(C, Out));
  }
}

//===----------------------------------------------------------------------===//
// Campaign journal
//===----------------------------------------------------------------------===//

std::string tmpJournalPath(const std::string &Name) {
  std::string Path = testing::TempDir() + "telechat_" + Name + ".journal";
  std::remove(Path.c_str());
  return Path;
}

/// One executed pipeline result to journal (memoised: runTelechat is the
/// slow part).
const TelechatResult &sampleResult() {
  static TelechatResult R = runTelechat(
      classicTest("MP+rel+acq"),
      Profile::current(CompilerKind::Llvm, OptLevel::O2, Arch::AArch64));
  return R;
}

TEST(JournalTest, WriteReadRoundTrip) {
  std::string Path = tmpJournalPath("roundtrip");
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = genSpec(9, 3);
  std::vector<CampaignConfig> Configs = pipelineConfig();

  JournalWriter W;
  ASSERT_EQ(W.create(Path, Spec, Configs), "");
  for (uint64_t Id : {0ull, 2ull})
    ASSERT_TRUE(W.appendResult(Id, sampleResult()));
  W.close();

  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  EXPECT_FALSE(J->TruncatedTail);
  EXPECT_EQ(J->Spec.K, CampaignSourceSpec::Kind::Generator);
  EXPECT_EQ(J->Spec.Gen.Seed, 9u);
  ASSERT_EQ(J->Configs.size(), 1u);
  EXPECT_EQ(J->Configs[0].P.name(), Configs[0].P.name());
  ASSERT_EQ(J->Results.size(), 2u);
  EXPECT_EQ(J->Results[0].first, 0u);
  EXPECT_EQ(J->Results[1].first, 2u);
  EXPECT_EQ(J->Results[1].second.SourceSim.Allowed,
            sampleResult().SourceSim.Allowed);
}

TEST(JournalTest, TruncatedTailIsDiscardedNotFatal) {
  std::string Path = tmpJournalPath("truncated");
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = genSpec();
  JournalWriter W;
  ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
  ASSERT_TRUE(W.appendResult(0, sampleResult()));
  ASSERT_TRUE(W.appendResult(1, sampleResult()));
  W.close();

  // Chop into the last record: the kill-mid-append shape.
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 3u);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), long(Bytes.size() - 3));
  Out.close();

  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  EXPECT_TRUE(J->TruncatedTail);
  ASSERT_EQ(J->Results.size(), 1u) << "partial record must be discarded";
  EXPECT_EQ(J->Results[0].first, 0u);

  // Resuming a truncated journal must cut the garbage tail before
  // appending: new records landing behind it would shift the framing
  // and corrupt the journal for the *next* resume.
  JournalWriter W2;
  ASSERT_EQ(W2.openAppend(Path, J->ValidBytes), "");
  ASSERT_TRUE(W2.appendResult(1, sampleResult()));
  W2.close();
  ErrorOr<JournalContents> J2 = readJournal(Path);
  ASSERT_TRUE(J2.hasValue()) << J2.error();
  EXPECT_FALSE(J2->TruncatedTail);
  ASSERT_EQ(J2->Results.size(), 2u);
  EXPECT_EQ(J2->Results[1].first, 1u);
}

TEST(JournalTest, DegenerateGeneratorSpecsAreWritableOrRefused) {
  // The writer must never produce a header the reader refuses: stranded
  // results would be unrecoverable. Empty order pools normalise to the
  // relaxed-only spelling RandomTestStream gives them anyway...
  std::string Path = tmpJournalPath("degenerate");
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = genSpec();
  Spec.Gen.LoadOrders.clear();
  JournalWriter W;
  ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
  W.close();
  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  ASSERT_EQ(J->Spec.Gen.LoadOrders.size(), 1u);
  EXPECT_EQ(J->Spec.Gen.LoadOrders[0], MemOrder::Relaxed);
  // ...while pools too large for the wire format are refused up front
  // (normalising them would change the generated stream).
  Spec.Gen.LoadOrders.assign(65, MemOrder::Relaxed);
  EXPECT_NE(W.create(Path, Spec, pipelineConfig()), "");
}

TEST(JournalTest, HostileJournalsAreRejected) {
  std::string Path = tmpJournalPath("hostile");
  auto WriteBytes = [&](const std::vector<uint8_t> &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              long(Bytes.size()));
  };
  auto Framed = [](JournalRec Tag, const WireBuffer &Payload) {
    std::vector<uint8_t> Bytes;
    uint32_t Len = uint32_t(Payload.size()) + 1;
    for (size_t I = 0; I != 4; ++I)
      Bytes.push_back(uint8_t(Len >> (8 * I)));
    Bytes.push_back(uint8_t(Tag));
    Bytes.insert(Bytes.end(), Payload.data(),
                 Payload.data() + Payload.size());
    return Bytes;
  };

  // Empty file: no header to resume from.
  WriteBytes({});
  EXPECT_FALSE(readJournal(Path).hasValue());

  // Oversized record length.
  WriteBytes({0xff, 0xff, 0xff, 0xff, 1});
  EXPECT_FALSE(readJournal(Path).hasValue());

  // Bad magic.
  {
    WireBuffer B;
    B.appendU32(0xdeadbeef);
    B.appendU16(JournalVersion);
    WriteBytes(Framed(JournalRec::Header, B));
    EXPECT_FALSE(readJournal(Path).hasValue());
  }

  // Version skew: a journal from the future is refused, not misparsed.
  {
    WireBuffer B;
    B.appendU32(JournalMagic);
    B.appendU16(JournalVersion + 1);
    WriteBytes(Framed(JournalRec::Header, B));
    ErrorOr<JournalContents> J = readJournal(Path);
    ASSERT_FALSE(J.hasValue());
    EXPECT_NE(J.error().find("version mismatch"), std::string::npos);
  }

  // First record is not a header.
  {
    WireBuffer B;
    B.appendU64(0);
    encodeTelechatResult(B, TelechatResult());
    WriteBytes(Framed(JournalRec::Result, B));
    EXPECT_FALSE(readJournal(Path).hasValue());
  }

  // A complete-but-garbage result record behind a valid header is
  // corruption, not a tail to skip.
  {
    CampaignSourceSpec Spec;
    Spec.K = CampaignSourceSpec::Kind::Generator;
    Spec.Gen = genSpec();
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
    W.close();
    std::ifstream In(Path, std::ios::binary);
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    In.close();
    WireBuffer Garbage;
    Garbage.appendU64(0); // id, then truncated result payload
    std::vector<uint8_t> Rec = Framed(JournalRec::Result, Garbage);
    Bytes.insert(Bytes.end(), Rec.begin(), Rec.end());
    WriteBytes(Bytes);
    ErrorOr<JournalContents> J = readJournal(Path);
    ASSERT_FALSE(J.hasValue());
    EXPECT_NE(J.error().find("corrupt result record"), std::string::npos);
  }

  // Unknown record tag.
  {
    CampaignSourceSpec Spec;
    Spec.K = CampaignSourceSpec::Kind::Generator;
    Spec.Gen = genSpec();
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
    W.close();
    std::ifstream In(Path, std::ios::binary);
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    In.close();
    WireBuffer Empty;
    Empty.appendU8(0);
    std::vector<uint8_t> Rec = Framed(JournalRec(9), Empty);
    Bytes.insert(Bytes.end(), Rec.begin(), Rec.end());
    WriteBytes(Bytes);
    EXPECT_FALSE(readJournal(Path).hasValue());
  }
}

//===----------------------------------------------------------------------===//
// Crash-recovery drill
//===----------------------------------------------------------------------===//

TEST(JournalCampaignTest, ResumeReExecutesOnlyIncompleteUnits) {
  RandomGenOptions G = genSpec(21, 4);
  std::vector<CampaignConfig> Configs = pipelineConfig();
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = G;
  Spec.NumConfigs = uint32_t(Configs.size());

  // The uninterrupted reference.
  LocalRun Ref = runStreamedLocal(G, Configs);
  ASSERT_GE(Ref.Results.size(), 3u);
  std::string RefJson = campaignResultsJson(Ref.Meta, Configs, Ref.Results);

  // A journal as a crashed server would leave it: header + the first K
  // accepted results (and nothing about the rest).
  const size_t K = 2;
  std::string Path = tmpJournalPath("resume");
  {
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, Configs), "");
    for (size_t Id = 0; Id != K; ++Id)
      ASSERT_TRUE(W.appendResult(Id, Ref.Results[Id]));
  }

  // Restart: replay the journal, serve only what is incomplete.
  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  ASSERT_EQ(J->Results.size(), K);
  JournalWriter Appender;
  ASSERT_EQ(Appender.openAppend(Path, J->ValidBytes), "");
  WorkServer Server(J->Spec.makeSource(), J->Configs,
                    WorkServerOptions());
  Server.setJournal(&Appender);
  Server.preloadResults(std::move(J->Results));
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Port, WOpts);
  Srv.join();
  Appender.close();

  // No unit re-executes on the already-merged side...
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_EQ(Report.ReplayedResults, K);
  EXPECT_EQ(Stats->UnitsCompleted, Ref.Results.size() - K);
  // ...and the final report is byte-identical to the uninterrupted run.
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, J->Configs,
                                Report.Results),
            RefJson);

  // The appended journal now holds the whole campaign: resuming again
  // completes with no workers at all.
  ErrorOr<JournalContents> Full = readJournal(Path);
  ASSERT_TRUE(Full.hasValue()) << Full.error();
  EXPECT_EQ(Full->Results.size(), Ref.Results.size());
  WorkServer Idle(Full->Spec.makeSource(), Full->Configs,
                  WorkServerOptions());
  Idle.preloadResults(std::move(Full->Results));
  ASSERT_EQ(Idle.start(), "");
  CampaignReport IdleReport = Idle.run(); // Must return, not block.
  EXPECT_EQ(IdleReport.ReplayedResults, Ref.Results.size());
  EXPECT_EQ(campaignResultsJson(IdleReport.UnitsMeta, Full->Configs,
                                IdleReport.Results),
            RefJson);
}

TEST(LoopbackCampaignTest, FinishesWhenLastWorkerDiesAfterFinalResult) {
  // Regression: completion is "source drained AND everything merged",
  // and only unit pulls drain the source. A client that leases the
  // whole corpus, returns every result, then vanishes without another
  // GetWork must not leave the server polling forever -- the run loop
  // itself has to discover the source is dry.
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB")};
  CampaignConfig Config;
  Config.SimulateOnly = true;
  Config.Opts.SourceModel = "rc11";
  WorkServer Server(makeCampaignUnits(Tests), {Config},
                    WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  ErrorOr<TcpSocket> Client = tcpConnect("127.0.0.1", Port, 5.0);
  ASSERT_TRUE(Client.hasValue()) << Client.error();
  {
    WireBuffer B;
    B.appendU32(WireMagic);
    B.appendU16(WireVersion);
    B.appendU32(1);
    ASSERT_TRUE(sendFrame(*Client, uint8_t(Msg::Hello), B));
    ErrorOr<Frame> Ack = recvFrame(*Client);
    ASSERT_TRUE(Ack.hasValue()) << Ack.error();
    ASSERT_EQ(Ack->Type, uint8_t(Msg::HelloAck));
    WireBuffer G; // Lease the entire corpus in one batch.
    G.appendU32(uint32_t(Tests.size()));
    ASSERT_TRUE(sendFrame(*Client, uint8_t(Msg::GetWork), G));
    ErrorOr<Frame> Work = recvFrame(*Client);
    ASSERT_TRUE(Work.hasValue()) << Work.error();
    ASSERT_EQ(Work->Type, uint8_t(Msg::Work));
    WireCursor C(Work->Payload);
    uint32_t N = C.readCount(16);
    ASSERT_EQ(N, Tests.size());
    for (uint32_t I = 0; I != N; ++I) {
      CampaignUnit U;
      ASSERT_TRUE(decodeCampaignUnit(C, U));
      WireBuffer R;
      R.appendU64(U.Id);
      encodeTelechatResult(R, runCampaignUnit(U, {Config}));
      ASSERT_TRUE(sendFrame(*Client, uint8_t(Msg::Result), R));
    }
  }
  Client->close(); // ...and never sends another GetWork.

  Srv.join(); // Hangs here if the server cannot finish on its own.
  EXPECT_EQ(Report.Results.size(), Tests.size());
  EXPECT_TRUE(Report.Results[0].SourceSim.ok());
  EXPECT_TRUE(Report.Results[1].SourceSim.ok());
}

//===----------------------------------------------------------------------===//
// Corpus dedupe (canonical duplicates answered by representatives)
//===----------------------------------------------------------------------===//

void dupExpr(Expr &E) {
  if (E.K == Expr::Kind::Reg)
    E.RegName += "_c";
  for (Expr &Op : E.Ops)
    dupExpr(Op);
}

void dupBody(std::vector<Stmt> &Body) {
  for (Stmt &S : Body) {
    if (!S.Dst.empty())
      S.Dst += "_c";
    if (!S.Loc.empty())
      S.Loc += "_c";
    dupExpr(S.Val);
    dupExpr(S.Cond);
    dupBody(S.Then);
    dupBody(S.Else);
  }
}

void dupPred(Predicate &P) {
  if (P.K == Predicate::Kind::Atom) {
    P.A.Name += "_c";
    if (P.A.K == PredAtom::Kind::RegEq)
      P.A.Thread += "_c";
  }
  for (Predicate &Op : P.Ops)
    dupPred(Op);
}

/// A canonical duplicate of \p T: every location, thread and register
/// renamed (and, with \p SwapThreads, the thread order reversed) -- a
/// different test textually, the same test canonically.
LitmusTest renamedDup(const LitmusTest &T, bool SwapThreads) {
  LitmusTest D = T;
  D.Name = T.Name + "-c";
  for (LocDecl &L : D.Locations)
    L.Name += "_c";
  for (Thread &Th : D.Threads) {
    Th.Name += "_c";
    dupBody(Th.Body);
  }
  dupPred(D.Final.P);
  if (SwapThreads)
    std::reverse(D.Threads.begin(), D.Threads.end());
  return D;
}

std::vector<CampaignConfig> simOnlyConfig() {
  CampaignConfig Config;
  Config.SimulateOnly = true;
  Config.Opts.SourceModel = "rc11";
  return {Config};
}

TEST(DedupeCampaignTest, ServedDuplicatesAreSynthesizedNotExecuted) {
  // Corpus: three base tests plus three renamed duplicates (one with
  // its threads reordered). With Dedupe on, the server serves one unit
  // per canonical class and synthesizes each duplicate's result by
  // renaming its representative's -- the worker never sees them.
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB"),
                                   classicTest("LB")};
  Tests.push_back(renamedDup(Tests[0], /*SwapThreads=*/false));
  Tests.push_back(renamedDup(Tests[1], /*SwapThreads=*/true));
  Tests.push_back(renamedDup(Tests[2], /*SwapThreads=*/false));
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);

  // Undeduped reference: every unit executed for real.
  std::vector<TelechatResult> Ref;
  for (const CampaignUnit &U : Units)
    Ref.push_back(runCampaignUnit(U, Configs));

  WorkServerOptions SOpts;
  SOpts.Dedupe = true;
  WorkServer Server(Units, Configs, SOpts);
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Port, WOpts);
  Srv.join();

  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_EQ(Stats->UnitsCompleted, 3u) << "duplicates must not be served";
  EXPECT_EQ(Report.DedupedUnits, 3u);
  ASSERT_EQ(Report.Results.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I)
    expectUnitIdentical(Ref[I], Report.Results[I], Tests[I].Name);
}

TEST(DedupeCampaignTest, LocalDedupeJsonByteIdentical) {
  // The local driver's wrapper source: duplicates are skipped during
  // the run and answered afterwards by renaming the representative's
  // result -- and the merged campaign JSON is byte-identical to the
  // run that executed everything.
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB")};
  Tests.push_back(renamedDup(Tests[0], /*SwapThreads=*/false));
  Tests.push_back(renamedDup(Tests[1], /*SwapThreads=*/false));
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);

  std::vector<TelechatResult> Undeduped(Units.size());
  {
    VectorUnitSource Source(Units);
    ThreadPool Pool(2);
    runCampaignUnits(Source, Configs, Pool,
                     [&](const CampaignUnit &U, TelechatResult R) {
                       Undeduped[U.Id] = std::move(R);
                     });
  }

  std::vector<TelechatResult> Deduped(Units.size());
  std::atomic<unsigned> Executed{0};
  VectorUnitSource Source(Units);
  DedupingUnitSource Stream(Source);
  {
    ThreadPool Pool(2);
    runCampaignUnits(Stream, Configs, Pool,
                     [&](const CampaignUnit &U, TelechatResult R) {
                       ++Executed;
                       Deduped[U.Id] = std::move(R);
                     });
  }
  ASSERT_EQ(Stream.duplicates().size(), 2u);
  for (const DedupingUnitSource::Dup &D : Stream.duplicates())
    Deduped[D.Id] = renameTelechatResult(Deduped[D.RepId], D.Renaming);
  EXPECT_EQ(Executed.load(), 2u);
  EXPECT_EQ(campaignResultsJson(Units, Configs, Deduped),
            campaignResultsJson(Units, Configs, Undeduped));
}

TEST(DedupeCampaignTest, ResumeWithDedupeDoesNotReserveReplayedDuplicates) {
  // The dedupe x journal hazard: a journal may already hold a
  // duplicate's (synthesized) result. On resume that unit must merge
  // as a replay -- not be parked, not be served, not be synthesized a
  // second time -- while duplicates of still-journalled representatives
  // keep synthesizing. The final report stays byte-identical to the
  // uninterrupted undeduped run.
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB")};
  Tests.push_back(renamedDup(Tests[0], /*SwapThreads=*/false)); // unit 2
  Tests.push_back(renamedDup(Tests[1], /*SwapThreads=*/false)); // unit 3
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);

  std::vector<TelechatResult> Ref;
  for (const CampaignUnit &U : Units)
    Ref.push_back(runCampaignUnit(U, Configs));
  std::string RefJson = campaignResultsJson(Units, Configs, Ref);

  // A crashed deduping server's journal: the representative (unit 0)
  // and its synthesized duplicate (unit 2); nothing about SB.
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Corpus;
  Spec.Units = Units;
  std::string Path = tmpJournalPath("dedupe_resume");
  {
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, Configs), "");
    ASSERT_TRUE(W.appendResult(0, Ref[0]));
    ASSERT_TRUE(W.appendResult(2, Ref[2]));
  }

  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  JournalWriter Appender;
  ASSERT_EQ(Appender.openAppend(Path, J->ValidBytes), "");
  WorkServerOptions SOpts;
  SOpts.Dedupe = true;
  WorkServer Server(J->Spec.makeSource(), J->Configs, SOpts);
  Server.setJournal(&Appender);
  Server.preloadResults(std::move(J->Results));
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Port, WOpts);
  Srv.join();
  Appender.close();

  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  // Units 0 and 2 replay from the journal; only unit 1 (SB) is served;
  // unit 3 is synthesized off its completion.
  EXPECT_EQ(Report.ReplayedResults, 2u);
  EXPECT_EQ(Report.DedupedUnits, 1u);
  EXPECT_EQ(Stats->UnitsCompleted, 1u);
  ASSERT_EQ(Report.Results.size(), Units.size());
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, J->Configs,
                                Report.Results),
            RefJson);

  // Synthesized results are journaled too: the journal now covers the
  // whole campaign and a second resume completes with no workers.
  ErrorOr<JournalContents> Full = readJournal(Path);
  ASSERT_TRUE(Full.hasValue()) << Full.error();
  EXPECT_EQ(Full->Results.size(), Units.size());
  WorkServer Idle(Full->Spec.makeSource(), Full->Configs, SOpts);
  Idle.preloadResults(std::move(Full->Results));
  ASSERT_EQ(Idle.start(), "");
  CampaignReport IdleReport = Idle.run(); // Must return, not block.
  EXPECT_EQ(IdleReport.ReplayedResults, Units.size());
  EXPECT_EQ(campaignResultsJson(IdleReport.UnitsMeta, Full->Configs,
                                IdleReport.Results),
            RefJson);
}

TEST(JournalCampaignTest, StaleReplaysAreCountedAndDropped) {
  // A replayed result whose id the stream never produces (journal
  // replayed against the wrong spec) must not corrupt the merge.
  std::vector<CampaignConfig> Configs{{Profile(), TestOptions(), true}};
  Configs[0].Opts.SourceModel = "rc11";
  std::vector<LitmusTest> Tests = {classicTest("MP")};
  WorkServer Server(makeCampaignUnits(Tests), Configs,
                    WorkServerOptions());
  std::vector<std::pair<uint64_t, TelechatResult>> Bogus;
  Bogus.emplace_back(999, TelechatResult());
  Server.preloadResults(std::move(Bogus));
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 1;
  std::thread W([&] { runCampaignWorker("127.0.0.1", Port, WOpts); });
  W.join();
  Srv.join();
  EXPECT_EQ(Report.StaleReplays, 1u);
  ASSERT_EQ(Report.Results.size(), 1u);
  EXPECT_TRUE(Report.Results[0].SourceSim.ok());
}

//===----------------------------------------------------------------------===//
// Lease scheduler tier
//===----------------------------------------------------------------------===//

TEST(LeaseSchedulerTest, LeaseRequeueAndCompletionDiscipline) {
  LeaseScheduler S(64, 120.0);
  for (uint64_t Id = 0; Id != 6; ++Id)
    S.addPending(Id);
  EXPECT_EQ(S.lease(0, 3), (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(S.lease(1, 3), (std::vector<uint64_t>{3, 4, 5}));
  EXPECT_TRUE(S.everLeased(0, 2));
  EXPECT_FALSE(S.everLeased(0, 3));
  EXPECT_EQ(S.outstanding(0), 3u);
  EXPECT_EQ(S.leasedCount(), 6u);

  // Slot 0 dies: its units requeue at the queue FRONT in ascending
  // order, so orphans re-issue in corpus order, ahead of fresh work.
  EXPECT_EQ(S.dropPeer(0).size(), 3u);
  EXPECT_EQ(S.outstanding(0), 0u);
  EXPECT_EQ(S.lease(1, 10), (std::vector<uint64_t>{0, 1, 2}));
  // everLeased survives the drop: the dead peer's in-flight results are
  // still authentic, not fabrications.
  EXPECT_TRUE(S.everLeased(0, 2));

  S.resultDelivered(1, 3);
  S.markCompleted(3);
  EXPECT_TRUE(S.completed(3));
  EXPECT_FALSE(S.completed(4));
  EXPECT_EQ(S.leasedCount(), 5u);
  // A completed id drains out of the queue instead of re-leasing (the
  // requeue-then-straggler-result race).
  S.addPending(3);
  EXPECT_TRUE(S.lease(2, 4).empty());
}

TEST(LeaseSchedulerTest, ExpiredLeasesRequeueFrontAscending) {
  LeaseScheduler S(64, 0.0); // Every lease is instantly overdue.
  for (uint64_t Id = 0; Id != 4; ++Id)
    S.addPending(Id);
  ASSERT_EQ(S.lease(0, 4).size(), 4u);
  // The earliest deadline has already passed: no napping allowed.
  EXPECT_EQ(S.pollTimeoutMs(500), 0);
  EXPECT_EQ(S.expire().size(), 4u);
  EXPECT_EQ(S.leasedCount(), 0u);
  EXPECT_EQ(S.outstanding(0), 0u);
  EXPECT_EQ(S.lease(1, 4), (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(LeaseSchedulerTest, PollTimeoutTracksEarliestLeaseDeadline) {
  LeaseScheduler S(64, 120.0);
  // Nothing leased: the idle tick is the only wakeup needed.
  EXPECT_EQ(S.pollTimeoutMs(500), 500);
  S.addPending(0);
  ASSERT_EQ(S.lease(0, 1).size(), 1u);
  // Deadline ~120s out, clamped to the idle tick...
  EXPECT_EQ(S.pollTimeoutMs(500), 500);
  // ...but with a huge idle budget the deadline itself bounds the nap.
  int Ms = S.pollTimeoutMs(10 * 60 * 1000);
  EXPECT_GT(Ms, 0);
  EXPECT_LE(Ms, 120 * 1000 + 2);
}

TEST(LeaseSchedulerTest, AdaptiveCapSizesToDeliveryRateAndIsExported) {
  // A microscopic backpressure target: one delivered result proves the
  // peer cannot hold even a single unit's worth of it, so its cap must
  // collapse to 1 -- while the FIRST batch is still the full maximum,
  // the property that keeps small campaigns and the kill/stall drills
  // on the old fixed-batch behaviour.
  LeaseScheduler S(8, 120.0, /*TargetLeaseSeconds=*/1e-9);
  for (uint64_t Id = 0; Id != 12; ++Id)
    S.addPending(Id);
  ASSERT_EQ(S.lease(0, 8).size(), 8u);
  S.resultDelivered(0, 0);
  EXPECT_EQ(S.lease(0, 8).size(), 1u);
  LeaseSizing Z = S.sizing();
  EXPECT_EQ(Z.Min, 1u);
  EXPECT_EQ(Z.Max, 8u);
  EXPECT_EQ(Z.Final, 1u);
}

//===----------------------------------------------------------------------===//
// Replaying unit source (journaled local campaigns)
//===----------------------------------------------------------------------===//

TEST(ReplayingCampaignTest, ReplaysAreConsumedSilentlyAndRecorded) {
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB"),
                                   classicTest("LB")};
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);
  std::map<uint64_t, TelechatResult> Replay;
  Replay[1] = sampleResult();
  Replay[999] = TelechatResult(); // Stale: no such unit in the stream.
  VectorUnitSource Inner(Units);
  ReplayingUnitSource Source(Inner, std::move(Replay));
  CampaignUnit U;
  std::vector<uint64_t> Served;
  while (Source.next(U))
    Served.push_back(U.Id);
  // The replayed unit never reaches the executor...
  EXPECT_EQ(Served, (std::vector<uint64_t>{0, 2}));
  // ...it is recorded with its meta for the id-keyed merge instead.
  ASSERT_EQ(Source.applied().size(), 1u);
  EXPECT_EQ(Source.applied()[0].Id, 1u);
  EXPECT_EQ(Source.applied()[0].Meta.TestName, Units[1].Test.Name);
  EXPECT_EQ(Source.applied()[0].Result.SourceSim.Allowed,
            sampleResult().SourceSim.Allowed);
  // The leftover entry is a stale replay (wrong spec's journal) until
  // the driver accounts for it (dedupe-swallowed duplicates use
  // forgetReplay the same way).
  EXPECT_EQ(Source.staleReplays(), 1u);
  Source.forgetReplay(999);
  EXPECT_EQ(Source.staleReplays(), 0u);
}

//===----------------------------------------------------------------------===//
// Journal compaction
//===----------------------------------------------------------------------===//

uint64_t fileSize(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  return In ? uint64_t(In.tellg()) : 0;
}

TEST(JournalCompactionTest, SortsDedupesAndDropsTruncatedTail) {
  std::string Path = tmpJournalPath("compact");
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = genSpec(9, 5);
  std::vector<CampaignConfig> Configs = pipelineConfig();
  JournalWriter W;
  ASSERT_EQ(W.create(Path, Spec, Configs), "");
  // Arrival order, with a losing duplicate for id 2.
  ASSERT_TRUE(W.appendResult(2, sampleResult()));
  ASSERT_TRUE(W.appendResult(0, sampleResult()));
  ASSERT_TRUE(W.appendResult(2, TelechatResult())); // First wins.
  ASSERT_TRUE(W.appendResult(1, sampleResult()));
  W.close();
  uint64_t SizeBefore = fileSize(Path);
  { // A torn append: half a length prefix, as a SIGKILL leaves it.
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out.write("\x20\x00", 2);
  }

  ErrorOr<CompactStats> Stats = compactJournal(Path);
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_EQ(Stats->BytesBefore, SizeBefore + 2);
  EXPECT_EQ(Stats->Results, 3u);
  EXPECT_LT(Stats->BytesAfter, Stats->BytesBefore); // Dup + tail gone.
  EXPECT_EQ(fileSize(Path), Stats->BytesAfter);
  // The temporary image was renamed into place, not left behind.
  EXPECT_FALSE(std::ifstream(Path + ".compact").good());

  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  EXPECT_FALSE(J->TruncatedTail);
  EXPECT_EQ(J->Spec.Gen.Seed, 9u);
  ASSERT_EQ(J->Results.size(), 3u);
  for (uint64_t I = 0; I != 3; ++I)
    EXPECT_EQ(J->Results[I].first, I); // Arrival order -> corpus order.
  // The first-written result for id 2 survived compaction, not the
  // empty duplicate.
  EXPECT_EQ(J->Results[2].second.SourceSim.Allowed,
            sampleResult().SourceSim.Allowed);
  EXPECT_FALSE(J->Results[2].second.SourceSim.Allowed.empty());
}

TEST(JournalCompactionTest, CompactionIsIdempotent) {
  std::string Path = tmpJournalPath("compact_twice");
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = genSpec();
  JournalWriter W;
  ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
  ASSERT_TRUE(W.appendResult(1, sampleResult()));
  ASSERT_TRUE(W.appendResult(0, sampleResult()));
  W.close();

  ErrorOr<CompactStats> First = compactJournal(Path);
  ASSERT_TRUE(First.hasValue()) << First.error();
  std::ifstream In1(Path, std::ios::binary);
  std::string Bytes1((std::istreambuf_iterator<char>(In1)),
                     std::istreambuf_iterator<char>());
  In1.close();

  ErrorOr<CompactStats> Second = compactJournal(Path);
  ASSERT_TRUE(Second.hasValue()) << Second.error();
  EXPECT_EQ(Second->BytesBefore, First->BytesAfter);
  EXPECT_EQ(Second->BytesAfter, Second->BytesBefore);
  EXPECT_EQ(Second->Results, 2u);
  std::ifstream In2(Path, std::ios::binary);
  std::string Bytes2((std::istreambuf_iterator<char>(In2)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(Bytes1, Bytes2) << "a compacted journal is a fixed point";
}

TEST(JournalCompactionTest, CompactedJournalResumesByteIdentically) {
  // The acceptance gate: crash -> compact -> resume merges
  // byte-identically to the uninterrupted run.
  RandomGenOptions G = genSpec(21, 4);
  std::vector<CampaignConfig> Configs = pipelineConfig();
  CampaignSourceSpec Spec;
  Spec.K = CampaignSourceSpec::Kind::Generator;
  Spec.Gen = G;
  Spec.NumConfigs = uint32_t(Configs.size());
  LocalRun Ref = runStreamedLocal(G, Configs);
  ASSERT_GE(Ref.Results.size(), 3u);
  std::string RefJson = campaignResultsJson(Ref.Meta, Configs, Ref.Results);

  // The crash image: results out of arrival order, then a torn append.
  std::string Path = tmpJournalPath("compact_resume");
  {
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, Configs), "");
    ASSERT_TRUE(W.appendResult(2, Ref.Results[2]));
    ASSERT_TRUE(W.appendResult(0, Ref.Results[0]));
  }
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out.write("\x10", 1);
  }
  ErrorOr<CompactStats> Stats = compactJournal(Path);
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_EQ(Stats->Results, 2u);

  // Resume off the compacted image: only the missing units execute.
  ErrorOr<JournalContents> J = readJournal(Path);
  ASSERT_TRUE(J.hasValue()) << J.error();
  EXPECT_FALSE(J->TruncatedTail);
  ASSERT_EQ(J->Results.size(), 2u);
  JournalWriter Appender;
  ASSERT_EQ(Appender.openAppend(Path, J->ValidBytes), "");
  WorkServer Server(J->Spec.makeSource(), J->Configs,
                    WorkServerOptions());
  Server.setJournal(&Appender);
  Server.preloadResults(std::move(J->Results));
  ASSERT_EQ(Server.start(), "");
  uint16_t Port = Server.port();
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats2 =
      runCampaignWorker("127.0.0.1", Port, WOpts);
  Srv.join();
  Appender.close();
  ASSERT_TRUE(Stats2.hasValue()) << Stats2.error();
  EXPECT_EQ(Report.ReplayedResults, 2u);
  EXPECT_EQ(Stats2->UnitsCompleted, Ref.Results.size() - 2);
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, J->Configs,
                                Report.Results),
            RefJson);

  // Compacting the now-complete journal and replaying it with no
  // workers still reproduces the same bytes.
  ErrorOr<CompactStats> Full = compactJournal(Path);
  ASSERT_TRUE(Full.hasValue()) << Full.error();
  EXPECT_EQ(Full->Results, Ref.Results.size());
  ErrorOr<JournalContents> Whole = readJournal(Path);
  ASSERT_TRUE(Whole.hasValue()) << Whole.error();
  WorkServer Idle(Whole->Spec.makeSource(), Whole->Configs,
                  WorkServerOptions());
  Idle.preloadResults(std::move(Whole->Results));
  ASSERT_EQ(Idle.start(), "");
  CampaignReport IdleReport = Idle.run(); // Must return, not block.
  EXPECT_EQ(IdleReport.ReplayedResults, Ref.Results.size());
  EXPECT_EQ(campaignResultsJson(IdleReport.UnitsMeta, Whole->Configs,
                                IdleReport.Results),
            RefJson);
}

TEST(JournalCompactionTest, HostileJournalsAreRefusedIntact) {
  std::string Path = tmpJournalPath("compact_hostile");

  // Missing file.
  EXPECT_FALSE(compactJournal(Path).hasValue());

  auto WriteBytes = [&](const std::vector<uint8_t> &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              long(Bytes.size()));
  };
  auto Framed = [](JournalRec Tag, const WireBuffer &Payload) {
    std::vector<uint8_t> Bytes;
    uint32_t Len = uint32_t(Payload.size()) + 1;
    for (size_t I = 0; I != 4; ++I)
      Bytes.push_back(uint8_t(Len >> (8 * I)));
    Bytes.push_back(uint8_t(Tag));
    Bytes.insert(Bytes.end(), Payload.data(),
                 Payload.data() + Payload.size());
    return Bytes;
  };

  // Empty file: no header to rewrite.
  WriteBytes({});
  EXPECT_FALSE(compactJournal(Path).hasValue());

  // Bad magic.
  {
    WireBuffer B;
    B.appendU32(0xdeadbeef);
    B.appendU16(JournalVersion);
    WriteBytes(Framed(JournalRec::Header, B));
    EXPECT_FALSE(compactJournal(Path).hasValue());
  }

  // A complete-but-garbage result record behind a valid header is
  // corruption: compaction must refuse it AND leave the original bytes
  // untouched -- rewriting a journal it cannot fully read would turn
  // recoverable corruption into silent data loss.
  {
    CampaignSourceSpec Spec;
    Spec.K = CampaignSourceSpec::Kind::Generator;
    Spec.Gen = genSpec();
    JournalWriter W;
    ASSERT_EQ(W.create(Path, Spec, pipelineConfig()), "");
    ASSERT_TRUE(W.appendResult(0, sampleResult()));
    W.close();
    std::ifstream In(Path, std::ios::binary);
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    In.close();
    WireBuffer Garbage;
    Garbage.appendU64(1); // An id, then a truncated result payload.
    std::vector<uint8_t> Rec = Framed(JournalRec::Result, Garbage);
    Bytes.insert(Bytes.end(), Rec.begin(), Rec.end());
    WriteBytes(Bytes);

    ErrorOr<CompactStats> Stats = compactJournal(Path);
    ASSERT_FALSE(Stats.hasValue());
    EXPECT_NE(Stats.error().find("corrupt result record"),
              std::string::npos);
    std::ifstream After(Path, std::ios::binary);
    std::vector<uint8_t> Untouched(
        (std::istreambuf_iterator<char>(After)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(Untouched, Bytes) << "refused compaction must not write";
    EXPECT_FALSE(std::ifstream(Path + ".compact").good());
  }
}

//===----------------------------------------------------------------------===//
// Relay tier
//===----------------------------------------------------------------------===//

TEST(RelayTest, RelayedCampaignMatchesFlatByteForByte) {
  // The tentpole invariant: server -> relay -> workers merges
  // byte-identically to the local streamed run (and therefore to the
  // flat server -> workers topology, which pins itself to the same
  // local bytes in StreamedServedCampaignMatchesLocalStream).
  RandomGenOptions G = genSpec(33, 5);
  std::vector<CampaignConfig> Configs = pipelineConfig();
  LocalRun Local = runStreamedLocal(G, Configs);
  std::string FlatJson =
      campaignResultsJson(Local.Meta, Configs, Local.Results);

  WorkServer Server(
      std::make_unique<GeneratorUnitSource>(G, uint32_t(Configs.size())),
      Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  RelayOptions ROpts;
  ROpts.UpstreamPort = Server.port();
  Relay R(ROpts);
  ASSERT_EQ(R.start(), "");
  RelayReport RReport;
  std::thread Rly([&] { RReport = R.run(); });

  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  WOpts.BatchSize = 2;
  uint16_t RPort = R.port();
  std::thread W1([&] { runCampaignWorker("127.0.0.1", RPort, WOpts); });
  std::thread W2([&] { runCampaignWorker("127.0.0.1", RPort, WOpts); });
  W1.join();
  W2.join();
  Rly.join();
  Srv.join();

  EXPECT_TRUE(Report.Error.empty()) << Report.Error;
  EXPECT_TRUE(RReport.Error.empty()) << RReport.Error;
  ASSERT_EQ(Report.Results.size(), Local.Results.size());
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, Configs,
                                Report.Results),
            FlatJson);
  // Every unit crossed the relay exactly once, both directions.
  EXPECT_EQ(RReport.UnitsRelayed, Local.Results.size());
  EXPECT_EQ(RReport.ResultsForwarded, Local.Results.size());
  EXPECT_EQ(RReport.Workers, 2u);
  EXPECT_GT(RReport.PollWakeups, 0u);
}

TEST(RelayTest, DeadWorkerBehindRelayRequeuesToSiblings) {
  // The tier-local fault model: a worker that leases units through a
  // relay and vanishes must have them re-leased to its siblings behind
  // the SAME relay -- the upstream server never sees the fault.
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB"),
                                   classicTest("LB"), classicTest("IRIW")};
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  std::vector<CampaignUnit> Units = makeCampaignUnits(Tests);
  std::vector<TelechatResult> Ref;
  for (const CampaignUnit &U : Units)
    Ref.push_back(runCampaignUnit(U, Configs));
  std::string RefJson = campaignResultsJson(Units, Configs, Ref);

  WorkServer Server(Units, Configs, WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  RelayOptions ROpts;
  ROpts.UpstreamPort = Server.port();
  Relay R(ROpts);
  ASSERT_EQ(R.start(), "");
  RelayReport RReport;
  std::thread Rly([&] { RReport = R.run(); });

  // A raw client handshakes, pulls two units, and dies holding them.
  uint32_t Leased = 0;
  {
    ErrorOr<TcpSocket> Client = tcpConnect("127.0.0.1", R.port(), 5.0);
    ASSERT_TRUE(Client.hasValue()) << Client.error();
    WireBuffer B;
    B.appendU32(WireMagic);
    B.appendU16(WireVersion);
    B.appendU32(1);
    ASSERT_TRUE(sendFrame(*Client, uint8_t(Msg::Hello), B));
    ErrorOr<Frame> Ack = recvFrame(*Client);
    ASSERT_TRUE(Ack.hasValue()) << Ack.error();
    ASSERT_EQ(Ack->Type, uint8_t(Msg::HelloAck));
    {
      // The relay replays the root server's ack verbatim: same
      // version, same planned total.
      WireCursor C(Ack->Payload);
      EXPECT_EQ(C.readU16(), WireVersion);
      EXPECT_EQ(C.readU64(), Units.size());
    }
    // The relay's first answers are Wait frames while it pulls from
    // upstream; keep asking until units arrive.
    for (int Tries = 0; Tries != 1000 && Leased == 0; ++Tries) {
      WireBuffer G;
      G.appendU32(2);
      ASSERT_TRUE(sendFrame(*Client, uint8_t(Msg::GetWork), G));
      ErrorOr<Frame> Reply = recvFrame(*Client);
      ASSERT_TRUE(Reply.hasValue()) << Reply.error();
      if (Reply->Type == uint8_t(Msg::Wait)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      ASSERT_EQ(Reply->Type, uint8_t(Msg::Work));
      WireCursor C(Reply->Payload);
      Leased = C.readCount(16);
      ASSERT_TRUE(C.ok());
    }
    ASSERT_GT(Leased, 0u);
    Client->close(); // ...without returning a single result.
  }

  // A real worker finishes the whole campaign through the relay.
  WorkerOptions WOpts;
  WOpts.Jobs = 2;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", R.port(), WOpts);
  Rly.join();
  Srv.join();

  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_TRUE(Stats->CleanDone);
  EXPECT_TRUE(RReport.Error.empty()) << RReport.Error;
  EXPECT_GE(RReport.Requeues, Leased); // The died-holding-units fault.
  EXPECT_EQ(Report.Requeues, 0u) << "the fault must stay behind the relay";
  ASSERT_EQ(Report.Results.size(), Units.size());
  EXPECT_EQ(campaignResultsJson(Report.UnitsMeta, Configs,
                                Report.Results),
            RefJson);
}

TEST(RelayTest, RefusesWhenUpstreamIsAbsent) {
  RelayOptions ROpts;
  ROpts.UpstreamPort = 1; // Reserved port: nothing listens there.
  ROpts.ConnectRetrySeconds = 0.0;
  Relay R(ROpts);
  std::string Err = R.start();
  ASSERT_FALSE(Err.empty());
  EXPECT_NE(Err.find("upstream connect"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Live status endpoint
//===----------------------------------------------------------------------===//

std::string httpGet(uint16_t Port, const std::string &Target) {
  ErrorOr<TcpSocket> S = tcpConnect("127.0.0.1", Port, 5.0);
  if (!S)
    return "connect failed: " + S.error();
  std::string Req = "GET " + Target + " HTTP/1.0\r\n\r\n";
  if (!S->sendAll(Req.data(), Req.size()))
    return "send failed";
  std::string Reply;
  char Buf[4096];
  long N;
  while ((N = S->recvSome(Buf, sizeof(Buf))) > 0)
    Reply.append(Buf, size_t(N));
  return Reply;
}

TEST(StatusEndpointTest, ServerExportsLiveJsonOverHttp) {
  std::vector<LitmusTest> Tests = {classicTest("MP"), classicTest("SB")};
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  WorkServerOptions SOpts;
  SOpts.StatusPort = 0; // Ephemeral.
  WorkServer Server(makeCampaignUnits(Tests), Configs, SOpts);
  ASSERT_EQ(Server.start(), "");
  uint16_t SPort = Server.statusPort();
  ASSERT_NE(SPort, 0);
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  std::string Reply = httpGet(SPort, "/status");
  EXPECT_NE(Reply.find("200 OK"), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("application/json"), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("\"role\": \"server\""), std::string::npos)
      << Reply;
  EXPECT_NE(Reply.find("\"planned\": 2"), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("\"completed\": 0"), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("\"lease_size_min\": "), std::string::npos);
  EXPECT_NE(Reply.find("\"poll_wakeups\": "), std::string::npos);
  EXPECT_NE(Reply.find("\"workers\": ["), std::string::npos);
  // Unknown target: a 404, not a hang, a crash, or a served campaign.
  EXPECT_NE(httpGet(SPort, "/nope").find("404"), std::string::npos);

  // Status traffic must not perturb the campaign itself.
  WorkerOptions WOpts;
  WOpts.Jobs = 1;
  ErrorOr<WorkerRunStats> Stats =
      runCampaignWorker("127.0.0.1", Server.port(), WOpts);
  Srv.join();
  ASSERT_TRUE(Stats.hasValue()) << Stats.error();
  EXPECT_EQ(Report.Results.size(), Tests.size());
}

TEST(StatusEndpointTest, RelayExportsItsOwnRole) {
  std::vector<LitmusTest> Tests = {classicTest("MP")};
  std::vector<CampaignConfig> Configs = simOnlyConfig();
  WorkServer Server(makeCampaignUnits(Tests), Configs,
                    WorkServerOptions());
  ASSERT_EQ(Server.start(), "");
  CampaignReport Report;
  std::thread Srv([&] { Report = Server.run(); });

  RelayOptions ROpts;
  ROpts.UpstreamPort = Server.port();
  ROpts.StatusPort = 0;
  Relay R(ROpts);
  ASSERT_EQ(R.start(), "");
  ASSERT_NE(R.statusPort(), 0);
  RelayReport RReport;
  std::thread Rly([&] { RReport = R.run(); });

  std::string Reply = httpGet(R.statusPort(), "/status");
  EXPECT_NE(Reply.find("200 OK"), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("\"role\": \"relay\""), std::string::npos)
      << Reply;
  EXPECT_NE(Reply.find("\"planned\": 1"), std::string::npos) << Reply;

  WorkerOptions WOpts;
  WOpts.Jobs = 1;
  runCampaignWorker("127.0.0.1", R.port(), WOpts);
  Rly.join();
  Srv.join();
  EXPECT_TRUE(RReport.Error.empty()) << RReport.Error;
  EXPECT_EQ(Report.Results.size(), Tests.size());
}

//===----------------------------------------------------------------------===//
// Kernel-snippet directory corpus (--kernels)
//===----------------------------------------------------------------------===//

TEST(KernelCorpusTest, DirectoryReadsSortedSkipsDotfilesNamesErrors) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::path(testing::TempDir()) / "telechat_kernels";
  fs::remove_all(Dir);
  fs::create_directories(Dir / "sub"); // Subdirectories are skipped.
  auto WriteFile = [&](const std::string &Name, const std::string &Text) {
    std::ofstream Out(Dir / Name);
    Out << Text;
  };
  const char *MP = R"(kernel mp_rel_acq
std::atomic<int> flag = 0;
std::atomic<int> data = 0;
thread P0 {
  data.store(1, std::memory_order_relaxed);
  flag.store(1, std::memory_order_release);
}
thread P1 {
  int r0 = flag.load(std::memory_order_acquire);
  int r1 = data.load(std::memory_order_relaxed);
}
exists (P1:r0=1 && P1:r1=0)
)";
  const char *SB = R"(kernel store_buffer
std::atomic<int> x = 0;
std::atomic<int> y = 0;
thread P0 {
  x.store(1, std::memory_order_relaxed);
  int r0 = y.load(std::memory_order_relaxed);
}
thread P1 {
  y.store(1, std::memory_order_relaxed);
  int r1 = x.load(std::memory_order_relaxed);
}
exists (P0:r0=0 && P1:r1=0)
)";
  // Written in reverse of their lexicographic order on purpose.
  WriteFile("b_sb.cpp", SB);
  WriteFile("a_mp.cpp", MP);
  WriteFile(".hidden", "not a kernel at all");

  ErrorOr<std::vector<LitmusTest>> Tests =
      readKernelDirectory(Dir.string());
  ASSERT_TRUE(Tests.hasValue()) << Tests.error();
  ASSERT_EQ(Tests->size(), 2u);
  // Filename order, not directory or mtime order: the corpus -- and
  // therefore every campaign unit id over it -- is stable.
  EXPECT_EQ((*Tests)[0].Name, "mp_rel_acq");
  EXPECT_EQ((*Tests)[1].Name, "store_buffer");
  EXPECT_EQ((*Tests)[0].Threads.size(), 2u);

  // A parse error names the offending file.
  WriteFile("c_bad.cpp", "kernel oops\nthis is not a kernel\n");
  ErrorOr<std::vector<LitmusTest>> Bad =
      readKernelDirectory(Dir.string());
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().find("c_bad.cpp"), std::string::npos)
      << Bad.error();

  // Not-a-directory and empty-directory are errors, not empty corpora
  // (an empty campaign from a typo'd path would look like success).
  EXPECT_FALSE(readKernelDirectory((Dir / "nope").string()).hasValue());
  EXPECT_FALSE(readKernelDirectory((Dir / "sub").string()).hasValue());
}

} // namespace

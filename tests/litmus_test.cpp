//===--- litmus_test.cpp - Litmus AST, parser, printer tests --------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(ValueTest, Basics) {
  EXPECT_TRUE(Value().isZero());
  EXPECT_EQ(Value(3).toString(), "3");
  EXPECT_EQ(Value(1, 2).toString(), "2:1");
  EXPECT_EQ(Value::fromInt(-1).Hi, ~uint64_t(0));
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(Value(2).add(Value(3)), Value(5));
  EXPECT_EQ(Value(5).sub(Value(3)), Value(2));
  EXPECT_EQ(Value(0b1100).bitXor(Value(0b1010)), Value(0b0110));
  EXPECT_EQ(Value(0b1100).bitAnd(Value(0b1010)), Value(0b1000));
}

TEST(ValueTest, CarryAcrossHalves) {
  Value Max(~uint64_t(0), 0);
  EXPECT_EQ(Max.add(Value(1)), Value(0, 1));
  EXPECT_EQ(Value(0, 1).sub(Value(1)), Value(~uint64_t(0), 0));
}

TEST(ValueTest, Truncation) {
  EXPECT_EQ(Value(0x1FF).truncated(IntType{8, false}), Value(0xFF));
  EXPECT_EQ(Value(7, 9).truncated(IntType{64, false}), Value(7));
  EXPECT_EQ(Value(7, 9).truncated(IntType{128, true}), Value(7, 9));
}

TEST(ValueTest, HalvesSwapped) {
  EXPECT_EQ(Value(1, 2).halvesSwapped(), Value(2, 1));
}

TEST(MemOrderTest, Predicates) {
  EXPECT_TRUE(isAcquire(MemOrder::Acquire));
  EXPECT_TRUE(isAcquire(MemOrder::SeqCst));
  EXPECT_TRUE(isAcquire(MemOrder::Consume));
  EXPECT_FALSE(isAcquire(MemOrder::Release));
  EXPECT_TRUE(isRelease(MemOrder::AcqRel));
  EXPECT_FALSE(isRelease(MemOrder::Relaxed));
  EXPECT_FALSE(isAtomicOrder(MemOrder::NA));
}

TEST(MemOrderTest, Names) {
  EXPECT_EQ(memOrderName(MemOrder::SeqCst), "memory_order_seq_cst");
  EXPECT_EQ(memOrderTag(MemOrder::Relaxed), "Rlx");
}

TEST(OutcomeTest, SetAndLookup) {
  Outcome O;
  O.set("P0:r0", Value(1));
  O.set("[x]", Value(2));
  O.set("P0:r0", Value(3)); // overwrite
  EXPECT_EQ(O.lookup("P0:r0"), Value(3));
  EXPECT_EQ(O.lookup("[x]"), Value(2));
  EXPECT_FALSE(O.lookup("[y]").has_value());
  EXPECT_EQ(O.entries().size(), 2u);
}

TEST(OutcomeTest, ProjectionAndRename) {
  Outcome O;
  O.set("a", Value(1));
  O.set("b", Value(2));
  Outcome P = O.projected({"a", "zzz"});
  EXPECT_EQ(P.entries().size(), 1u);
  Outcome R = O.renamed({{"a", "x"}, {"missing", "y"}});
  EXPECT_EQ(R.lookup("x"), Value(1));
  EXPECT_EQ(R.entries().size(), 1u);
}

TEST(OutcomeTest, OrderingIsCanonical) {
  Outcome A, B;
  A.set("k1", Value(1));
  A.set("k2", Value(2));
  B.set("k2", Value(2));
  B.set("k1", Value(1));
  EXPECT_EQ(A, B);
}

TEST(PredicateTest, EvalAtoms) {
  Outcome O;
  O.set("P1:r0", Value(1));
  O.set("[y]", Value(2));
  EXPECT_TRUE(Predicate::regEq("P1", "r0", Value(1)).eval(O));
  EXPECT_FALSE(Predicate::regEq("P1", "r0", Value(0)).eval(O));
  EXPECT_TRUE(Predicate::locEq("y", Value(2)).eval(O));
  // Missing keys read as zero (herd convention).
  EXPECT_TRUE(Predicate::regEq("P9", "r9", Value(0)).eval(O));
}

TEST(PredicateTest, Connectives) {
  Outcome O;
  O.set("[x]", Value(1));
  Predicate T = Predicate::locEq("x", Value(1));
  Predicate F = Predicate::locEq("x", Value(9));
  std::vector<Predicate> TF;
  TF.push_back(T);
  TF.push_back(F);
  EXPECT_FALSE(Predicate::conj(TF).eval(O));
  EXPECT_TRUE(Predicate::disj(TF).eval(O));
  EXPECT_TRUE(Predicate::negate(F).eval(O));
}

TEST(PredicateTest, CollectKeys) {
  std::vector<Predicate> Ops;
  Ops.push_back(Predicate::regEq("P0", "r0", Value(1)));
  Ops.push_back(Predicate::locEq("y", Value(2)));
  Predicate P = Predicate::conj(std::move(Ops));
  std::vector<std::string> Keys;
  P.collectKeys(Keys);
  EXPECT_EQ(Keys, (std::vector<std::string>{"P0:r0", "[y]"}));
}

TEST(ParserTest, ParsesFig1Shape) {
  LitmusTest T = paperFig1();
  EXPECT_EQ(T.Name, "Fig1");
  ASSERT_EQ(T.Threads.size(), 2u);
  ASSERT_EQ(T.Locations.size(), 2u);
  // P1: exchange (no dst), fence, load.
  const Thread &P1 = T.Threads[1];
  ASSERT_EQ(P1.Body.size(), 3u);
  EXPECT_EQ(P1.Body[0].K, Stmt::Kind::Rmw);
  EXPECT_TRUE(P1.Body[0].Dst.empty());
  EXPECT_EQ(P1.Body[0].Rmw, RmwKind::Xchg);
  EXPECT_EQ(P1.Body[1].K, Stmt::Kind::Fence);
  EXPECT_EQ(P1.Body[1].Order, MemOrder::Acquire);
  EXPECT_EQ(P1.Body[2].K, Stmt::Kind::Load);
}

TEST(ParserTest, DefinesExpandOrders) {
  auto T = parseLitmusC(R"(C defs
{ *x = 0; }
#define rlx memory_order_relaxed
void P0(atomic_int* x) { atomic_store_explicit(x, 1, rlx); }
exists (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Threads[0].Body[0].Order, MemOrder::Relaxed);
}

TEST(ParserTest, NonAtomicAccesses) {
  auto T = parseLitmusC(R"(C na
{ *x = 0; *y = 0; }
void P0(int* x, int* y) { int r0 = *x; *y = r0 + 1; }
exists (P0:r0=0)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Threads[0].Body[0].Order, MemOrder::NA);
  EXPECT_EQ(T->Threads[0].Body[1].K, Stmt::Kind::Store);
  EXPECT_EQ(T->Threads[0].Body[1].Val.K, Expr::Kind::Add);
}

TEST(ParserTest, IfElseAndNesting) {
  auto T = parseLitmusC(R"(C branches
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) {
    atomic_store_explicit(y, 1, memory_order_relaxed);
  } else {
    if (r0 ^ r0) { *y = 2; }
  }
}
exists (y=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  const Stmt &If = T->Threads[0].Body[1];
  ASSERT_EQ(If.K, Stmt::Kind::If);
  EXPECT_EQ(If.Then.size(), 1u);
  ASSERT_EQ(If.Else.size(), 1u);
  EXPECT_EQ(If.Else[0].K, Stmt::Kind::If);
}

TEST(ParserTest, TypesAndConst) {
  auto T = parseLitmusC(R"(C types
{ uint8_t *a = 250; const int64_t *b = 5; __int128 *c = 0; }
void P0(int* a) { int r0 = *a; }
exists (P0:r0=250)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Locations[0].Type.Bits, 8u);
  EXPECT_FALSE(T->Locations[0].Type.Signed);
  EXPECT_TRUE(T->Locations[1].Const);
  EXPECT_EQ(T->Locations[1].Type.Bits, 64u);
  EXPECT_EQ(T->Locations[2].Type.Bits, 128u);
}

TEST(ParserTest, Wide128Literals) {
  auto T = parseLitmusC(R"(C wide
{ __int128 *x = 0; }
void P0(atomic_int128* x) {
  atomic_store_explicit(x, 2:1, memory_order_relaxed);
}
exists (x=2:1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Threads[0].Body[0].Val.Imm, Value(1, 2));
  // The predicate value too.
  Outcome O;
  O.set("[x]", Value(1, 2));
  EXPECT_TRUE(T->Final.P.eval(O));
}

TEST(ParserTest, FinalConditionForms) {
  auto T1 = parseLitmusC(
      "C a\n{ *x = 0; }\nvoid P0(int* x){ *x = 1; }\n~exists (x=0)\n");
  ASSERT_TRUE(T1.hasValue()) << T1.error();
  EXPECT_EQ(T1->Final.Q, FinalCond::Quant::NotExists);
  auto T2 = parseLitmusC(
      "C b\n{ *x = 0; }\nvoid P0(int* x){ *x = 1; }\nforall (x=1)\n");
  ASSERT_TRUE(T2.hasValue()) << T2.error();
  EXPECT_EQ(T2->Final.Q, FinalCond::Quant::Forall);
  auto T3 = parseLitmusC(
      "C c\n{ *x = 0; }\nvoid P0(int* x){ *x = 1; }\nexists (0:r0=0)\n");
  ASSERT_TRUE(T3.hasValue()) << T3.error();
  std::vector<std::string> Keys;
  T3->Final.P.collectKeys(Keys);
  EXPECT_EQ(Keys, std::vector<std::string>{"P0:r0"});
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto T = parseLitmusC("C x\n{ *x = 0; }\nvoid P0(int* x) {\n  *x = ;\n}\n"
                        "exists (x=0)\n");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.error().find("line 4"), std::string::npos) << T.error();
}

TEST(ParserTest, RejectsUndeclaredLocation) {
  auto T = parseLitmusC(
      "C x\n{ *x = 0; }\nvoid P0(int* y){ *y = 1; }\nexists (x=0)\n");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.error().find("undeclared location"), std::string::npos);
}

TEST(ParserTest, RejectsUndefinedRegister) {
  auto T = parseLitmusC(
      "C x\n{ *x = 0; }\nvoid P0(int* x){ *x = r7; }\nexists (x=0)\n");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.error().find("undefined register"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateThreads) {
  auto T = parseLitmusC("C x\n{ *x = 0; }\nvoid P0(int* x){ *x = 1; }\n"
                        "void P0(int* x){ *x = 2; }\nexists (x=0)\n");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.error().find("duplicate thread"), std::string::npos);
}

TEST(ParserTest, CommentsAreSkipped) {
  auto T = parseLitmusC(R"(C comments
// leading comment
{ *x = 0; } /* block
   spanning lines */
void P0(int* x) {
  *x = 1; // trailing
}
exists (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
}

namespace {

class RoundTripTest : public testing::TestWithParam<std::string> {};

} // namespace

TEST_P(RoundTripTest, PrintParseIsStable) {
  LitmusTest Original = classicTest(GetParam());
  std::string Printed = printLitmusC(Original);
  ErrorOr<LitmusTest> Reparsed = parseLitmusC(Printed);
  ASSERT_TRUE(Reparsed.hasValue())
      << GetParam() << ": " << Reparsed.error() << "\n"
      << Printed;
  // Second print must be identical (fixpoint after one round).
  EXPECT_EQ(printLitmusC(*Reparsed), Printed) << GetParam();
  EXPECT_EQ(Reparsed->Threads.size(), Original.Threads.size());
  EXPECT_EQ(Reparsed->Final.toString(), Original.Final.toString());
}

INSTANTIATE_TEST_SUITE_P(Classics, RoundTripTest,
                         testing::ValuesIn(classicNames()));

TEST(AstTest, AssignedRegisters) {
  LitmusTest T = classicTest("MP");
  // The reading thread assigns r0 and r1.
  bool Found = false;
  for (const Thread &Th : T.Threads) {
    std::vector<std::string> Regs = assignedRegisters(Th);
    if (Regs.size() == 2)
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(AstTest, ForEachStmtVisitsBranches) {
  LitmusTest T = classicTest("LB+ctrls");
  unsigned Stores = 0;
  for (const Thread &Th : T.Threads)
    forEachStmt(Th.Body, [&](const Stmt &S) {
      if (S.K == Stmt::Kind::Store)
        ++Stores;
    });
  EXPECT_EQ(Stores, 4u); // two identical stores per diamond, two threads
}

TEST(AstTest, ValidateDetectsBadTest) {
  LitmusTest T = classicTest("MP");
  T.Threads[0].Body.push_back(Stmt::store("nosuch", Value(1), MemOrder::NA));
  EXPECT_FALSE(T.validate().empty());
}

//===--- hardware_test.cpp - Operational machine and C4 tests -------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "asmcore/AsmParser.h"
#include "diy/Classics.h"
#include "hardware/C4.h"
#include "hardware/Machine.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

AsmLitmusTest parseAsm(const char *Text) {
  ErrorOr<AsmLitmusTest> T = parseAsmLitmus(Text);
  EXPECT_TRUE(T.hasValue()) << (T.hasValue() ? "" : T.error());
  return *T;
}

const char *SbAsm = R"(AArch64 sb
{
  x = 0;
  y = 0;
  P0:x0 = &x;
  P0:x1 = &y;
  P1:x0 = &x;
  P1:x1 = &y;
}
P0 {
  mov w2, #1
  str w2, [x0]
  ldr w3, [x1]
  ret
}
P1 {
  mov w2, #1
  str w2, [x1]
  ldr w3, [x0]
  ret
}
exists (P0:X3=0 /\ P1:X3=0)
)";

const char *LbAsm = R"(AArch64 lb
{
  x = 0;
  y = 0;
  P0:x0 = &x;
  P0:x1 = &y;
  P1:x0 = &x;
  P1:x1 = &y;
}
P0 {
  ldr w2, [x0]
  mov w3, #1
  str w3, [x1]
  ret
}
P1 {
  ldr w2, [x1]
  mov w3, #1
  str w3, [x0]
  ret
}
exists (P0:X2=1 /\ P1:X2=1)
)";

const char *CoRRAsm = R"(AArch64 corr
{
  x = 0;
  P0:x0 = &x;
  P1:x0 = &x;
}
P0 {
  mov w1, #1
  str w1, [x0]
  ret
}
P1 {
  ldr w1, [x0]
  ldr w2, [x0]
  ret
}
exists (P1:X1=1 /\ P1:X2=0)
)";

bool observes(const HwResult &R, const Outcome &O) {
  return R.Observed.count(O) != 0;
}

Outcome bothRegs(const char *K0, uint64_t V0, const char *K1, uint64_t V1) {
  Outcome O;
  O.set(K0, Value(V0));
  O.set(K1, Value(V1));
  return O;
}

} // namespace

TEST(MachineTest, DeterministicInSeed) {
  AsmLitmusTest T = parseAsm(SbAsm);
  HwConfig C = HwConfig::raspberryPiLike();
  C.Runs = 200;
  HwResult A = runOnHardware(T, C);
  HwResult B = runOnHardware(T, C);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A.Observed, B.Observed);
}

TEST(MachineTest, StressLoopIdenticalAcrossJobs) {
  // Per-run seeding makes the stress loop's observations independent of
  // how many pool workers execute it (ROADMAP: parallel C4 oracle).
  for (const char *Asm : {SbAsm, LbAsm}) {
    AsmLitmusTest T = parseAsm(Asm);
    HwConfig Seq = HwConfig::appleA9Like();
    Seq.Runs = 500;
    Seq.Jobs = 1;
    HwResult Ref = runOnHardware(T, Seq);
    ASSERT_TRUE(Ref.ok()) << Ref.Error;
    for (unsigned J : {2u, 4u, 0u}) {
      HwConfig Par = Seq;
      Par.Jobs = J;
      HwResult R = runOnHardware(T, Par);
      ASSERT_TRUE(R.ok()) << R.Error;
      EXPECT_EQ(Ref.Observed, R.Observed) << "jobs " << J;
      EXPECT_EQ(Ref.Runs, R.Runs) << "jobs " << J;
    }
  }
}

TEST(MachineTest, ParallelErrorPathDeterministic) {
  // An unsupported instruction must fail identically for any Jobs.
  const char *Bad = R"(AArch64 bad
{
  x = 0;
  P0:x0 = &x;
}
P0 {
  ldadd w1, w2, [x0]
  ret
}
exists (P0:X2=0)
)";
  AsmLitmusTest T = parseAsm(Bad);
  HwConfig Seq;
  Seq.Runs = 64;
  HwResult A = runOnHardware(T, Seq);
  HwConfig Par = Seq;
  Par.Jobs = 4;
  HwResult B = runOnHardware(T, Par);
  ASSERT_FALSE(A.ok());
  ASSERT_FALSE(B.ok());
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Runs, B.Runs);
  EXPECT_EQ(A.Observed, B.Observed);
}

TEST(MachineTest, StoreBufferExhibitsSB) {
  AsmLitmusTest T = parseAsm(SbAsm);
  HwConfig C = HwConfig::raspberryPiLike();
  C.Runs = 3000;
  HwResult R = runOnHardware(T, C);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(observes(R, bothRegs("P0:X3", 0, "P1:X3", 0)))
      << "store buffering must be visible on every config";
}

TEST(MachineTest, RaspberryPiNeverExhibitsLB) {
  AsmLitmusTest T = parseAsm(LbAsm);
  HwConfig C = HwConfig::raspberryPiLike();
  C.Runs = 3000;
  HwResult R = runOnHardware(T, C);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(observes(R, bothRegs("P0:X2", 1, "P1:X2", 1)))
      << "an in-order-issue machine cannot produce LB";
}

TEST(MachineTest, AppleA9ExhibitsLBUnderStress) {
  AsmLitmusTest T = parseAsm(LbAsm);
  HwConfig C = HwConfig::appleA9Like();
  C.Runs = 4000;
  HwResult R = runOnHardware(T, C);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(observes(R, bothRegs("P0:X2", 1, "P1:X2", 1)))
      << "the A9-like configuration defers loads, enabling LB";
}

TEST(MachineTest, CoherenceHoldsOnBothConfigs) {
  AsmLitmusTest T = parseAsm(CoRRAsm);
  for (HwConfig C : {HwConfig::raspberryPiLike(), HwConfig::appleA9Like()}) {
    C.Runs = 3000;
    HwResult R = runOnHardware(T, C);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_FALSE(observes(R, bothRegs("P1:X1", 1, "P1:X2", 0)))
        << "same-location reads must not go backwards";
  }
}

TEST(MachineTest, DmbForbidsSB) {
  std::string Text = SbAsm;
  // Insert a DMB ISH between the store and the load of each thread.
  size_t Pos;
  while ((Pos = Text.find("  ldr w3")) != std::string::npos)
    Text.replace(Pos, 8, "  dmb ish\n  xldr w3");
  while ((Pos = Text.find("xldr")) != std::string::npos)
    Text.replace(Pos, 4, "ldr ");
  AsmLitmusTest T = parseAsm(Text.c_str());
  HwConfig C = HwConfig::appleA9Like();
  C.Runs = 3000;
  HwResult R = runOnHardware(T, C);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(observes(R, bothRegs("P0:X3", 0, "P1:X3", 0)));
}

TEST(MachineTest, ExclusivesImplementAtomicIncrements) {
  const char *Incr = R"(AArch64 incr
{
  x = 0;
  P0:x0 = &x;
  P1:x0 = &x;
}
P0 {
.L0:
  ldxr w1, [x0]
  add w2, w1, #1
  stxr w3, w2, [x0]
  cbnz w3, .L0
  ret
}
P1 {
.L0:
  ldxr w1, [x0]
  add w2, w1, #1
  stxr w3, w2, [x0]
  cbnz w3, .L0
  ret
}
exists ([x]=2)
)";
  AsmLitmusTest T = parseAsm(Incr);
  HwConfig C = HwConfig::appleA9Like();
  C.Runs = 2000;
  HwResult R = runOnHardware(T, C);
  ASSERT_TRUE(R.ok()) << R.Error;
  Outcome Two;
  Two.set("[x]", Value(2));
  ASSERT_EQ(R.Observed.size(), 1u) << "increments must never be lost";
  EXPECT_TRUE(observes(R, Two));
}

TEST(MachineTest, RejectsNonAArch64) {
  AsmLitmusTest T;
  T.TargetArch = Arch::X86_64;
  EXPECT_FALSE(runOnHardware(T, HwConfig()).ok());
}

TEST(C4Test, FindsNothingOnStrongHardwareForLB) {
  C4Result R = runC4(paperFig7(),
                     Profile::current(CompilerKind::Llvm, OptLevel::O3,
                                      Arch::AArch64));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.foundDifference())
      << "RPi-like hardware cannot witness LB (paper §IV-A)";
}

TEST(C4Test, FindsLBOnWeakHardware) {
  C4Options O;
  O.Hardware = HwConfig::appleA9Like();
  O.Hardware.Runs = 4000;
  C4Result R = runC4(paperFig7(),
                     Profile::current(CompilerKind::Llvm, OptLevel::O3,
                                      Arch::AArch64),
                     O);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.foundDifference());
}

TEST(C4Test, HardwareOutcomesAreSoundForSynchronisedTests) {
  // Hardware runs of a correctly-synchronised test stay within the
  // source model's outcomes.
  for (const char *Name : {"MP+rel+acq", "SB+scs"}) {
    C4Options O;
    O.Hardware = HwConfig::appleA9Like();
    C4Result R = runC4(classicTest(Name),
                       Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                        Arch::AArch64),
                       O);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Error;
    EXPECT_FALSE(R.foundDifference()) << Name;
  }
}

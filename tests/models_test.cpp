//===--- models_test.cpp - Memory-model library tests ---------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the Cat model library against the classic litmus families:
/// a behaviour matrix (is the witness allowed?) per (test, source model),
/// and inclusion properties between models (SC refines RC11 refines
/// RC11+LB).
///
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "models/Models.h"
#include "models/Registry.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(ModelRegistryTest, AllEmbeddedModelsParse) {
  for (const std::string &Name : modelNames()) {
    const CatModel &M = getModel(Name); // aborts on parse failure
    EXPECT_FALSE(M.Stmts.empty()) << Name;
  }
}

TEST(ModelRegistryTest, ExpectedModelsPresent) {
  std::vector<std::string> Names = modelNames();
  for (const char *Expected :
       {"sc", "rc11", "rc11+lb", "c11-simp", "aarch64", "aarch64+const",
        "armv7", "armv7-buggy", "x86tso", "riscv", "ppc", "mips"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expected), Names.end())
        << Expected;
}

TEST(ModelRegistryTest, UserModelTextParses) {
  ErrorOr<CatModel> M = parseModelText("let a = po\nacyclic a\n");
  EXPECT_TRUE(M.hasValue());
  EXPECT_FALSE(parseModelText("acyclic (").hasValue());
}

namespace {

/// (classic test, model, witness allowed?).
struct MatrixCase {
  const char *Test;
  const char *Model;
  bool WitnessAllowed;
};

/// The expected behaviour matrix for C source models. The witness of each
/// classic is its relaxed outcome.
const MatrixCase Matrix[] = {
    // Sequential consistency forbids every relaxation cycle.
    {"MP", "sc", false},
    {"SB", "sc", false},
    {"LB", "sc", false},
    {"2+2W", "sc", false},
    {"IRIW", "sc", false},
    {"R", "sc", false},
    {"S", "sc", false},
    {"CoRR", "sc", false},
    // RC11 with relaxed atomics: store buffering and friends appear, but
    // no-thin-air forbids LB and coherence forbids CoRR/CoWW.
    {"MP", "rc11", true},
    {"SB", "rc11", true},
    {"R", "rc11", true},
    {"S", "rc11", true},
    {"2+2W", "rc11", true},
    {"IRIW", "rc11", true},
    {"LB", "rc11", false},
    {"LB+datas", "rc11", false},
    {"LB+ctrls", "rc11", false},
    {"CoRR", "rc11", false},
    {"CoWW", "rc11", false},
    // Synchronised variants are forbidden again.
    {"MP+fences", "rc11", false},
    {"MP+rel+acq", "rc11", false},
    {"SB+scs", "rc11", false},
    {"SB+scfences", "rc11", false},
    {"IRIW+scs", "rc11", false},
    {"LB+rel+acq", "rc11", false},
    // rc11+lb permits LB -- including the syntactic-dependency variants,
    // since C/C++ models ignore syntactic dependencies (their stored
    // values are constants, so no thin-air value is needed). Coherence
    // violations stay forbidden.
    {"LB", "rc11+lb", true},
    {"LB+datas", "rc11+lb", true},
    {"CoRR", "rc11+lb", false},
    {"MP+rel+acq", "rc11+lb", false},
    // The simplified C11 fragment behaves like rc11 on these.
    {"MP+rel+acq", "c11-simp", false},
    {"LB", "c11-simp", false},
    {"SB", "c11-simp", true},
};

class SourceModelMatrixTest : public testing::TestWithParam<MatrixCase> {};

} // namespace

TEST_P(SourceModelMatrixTest, WitnessMatchesExpectation) {
  const MatrixCase &C = GetParam();
  LitmusTest T = classicTest(C.Test);
  SimProgram P = lowerLitmusC(T);
  SimResult R = simulateProgram(P, C.Model);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_FALSE(R.TimedOut);
  EXPECT_EQ(finalConditionHolds(P, R), C.WitnessAllowed)
      << C.Test << " under " << C.Model;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SourceModelMatrixTest, testing::ValuesIn(Matrix),
    [](const testing::TestParamInfo<MatrixCase> &Info) {
      std::string Name = std::string(Info.param.Test) + "_under_" +
                         Info.param.Model;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

namespace {

class ModelInclusionTest : public testing::TestWithParam<std::string> {};

} // namespace

TEST_P(ModelInclusionTest, ScRefinesRc11RefinesRc11Lb) {
  // outcomes(sc) subset of outcomes(rc11) subset of outcomes(rc11+lb):
  // each weaker model only adds behaviours.
  LitmusTest T = classicTest(GetParam());
  SimResult Sc = simulateC(T, "sc");
  SimResult Rc11 = simulateC(T, "rc11");
  SimResult Lb = simulateC(T, "rc11+lb");
  ASSERT_TRUE(Sc.ok() && Rc11.ok() && Lb.ok());
  for (const Outcome &O : Sc.Allowed)
    EXPECT_TRUE(Rc11.Allowed.count(O)) << O.toString();
  for (const Outcome &O : Rc11.Allowed)
    EXPECT_TRUE(Lb.Allowed.count(O)) << O.toString();
}

INSTANTIATE_TEST_SUITE_P(Classics, ModelInclusionTest,
                         testing::ValuesIn(classicNames()));

TEST(ModelsTest, RaceFlagFiresOnPlainAccesses) {
  SimResult R = simulateC(paperFig9(), "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Flags.count("race"));
}

TEST(ModelsTest, NoRaceFlagOnAtomics) {
  SimResult R = simulateC(paperFig7(), "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Flags.count("race"));
}

TEST(ModelsTest, Rc11ScAxiomOrdersScAccesses) {
  // SB with seq_cst accesses: psc forbids both-zero.
  LitmusTest T = classicTest("SB+scs");
  SimProgram P = lowerLitmusC(T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(finalConditionHolds(P, R));
}

TEST(ModelsTest, Rc11ScFencesRestoreOrder) {
  LitmusTest T = classicTest("SB+scfences");
  SimProgram P = lowerLitmusC(T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(finalConditionHolds(P, R));
}

TEST(ModelsTest, Fig1OutcomesMatchPaperFig3) {
  // The paper's Fig. 3: exactly three outcomes under RC11.
  SimResult R = simulateC(paperFig1(), "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Allowed.size(), 3u);
  Outcome Forbidden;
  Forbidden.set("P1:r0", Value(0));
  Forbidden.set("[y]", Value(2));
  EXPECT_FALSE(R.Allowed.count(Forbidden));
}

//===--- diy_test.cpp - Test generator tests ------------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "diy/Config.h"
#include "diy/Cycle.h"
#include "diy/Generator.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace telechat;

TEST(CycleParseTest, AcceptsDiySyntax) {
  auto E = parseCycle("Rfe PodRR Fre PodWW");
  ASSERT_TRUE(E.hasValue()) << E.error();
  ASSERT_EQ(E->size(), 4u);
  EXPECT_EQ((*E)[0].K, CycleEdge::Kind::Rfe);
  EXPECT_EQ((*E)[1].K, CycleEdge::Kind::Po);
  EXPECT_FALSE((*E)[1].SameLoc);
  EXPECT_EQ((*E)[1].From, EventKind::Read);
}

TEST(CycleParseTest, FencedWithOrders) {
  auto E = parseCycle("FencedWW.rel Rfe FencedRR.acq Fre");
  ASSERT_TRUE(E.hasValue()) << E.error();
  EXPECT_EQ((*E)[0].K, CycleEdge::Kind::Fenced);
  EXPECT_EQ((*E)[0].FenceOrder, MemOrder::Release);
  EXPECT_EQ((*E)[2].FenceOrder, MemOrder::Acquire);
}

TEST(CycleParseTest, RejectsBadEdges) {
  EXPECT_FALSE(parseCycle("Nope").hasValue());
  EXPECT_FALSE(parseCycle("PoxRR").hasValue());
  EXPECT_FALSE(parseCycle("FencedWW.zzz").hasValue());
  EXPECT_FALSE(parseCycle("").hasValue());
}

TEST(CycleGenTest, RejectsNonChainingCycles) {
  // Rfe ends at a Read; Coe starts at a Write: cannot chain.
  CycleSpec Spec;
  Spec.Edges = *parseCycle("Rfe Coe");
  EXPECT_FALSE(generateFromCycle(Spec).hasValue());
}

TEST(CycleGenTest, RejectsAllInternalCycles) {
  CycleSpec Spec;
  Spec.Edges = *parseCycle("PodRW PodWR");
  // Chains but has no external edge.
  EXPECT_FALSE(generateFromCycle(Spec).hasValue());
}

TEST(CycleGenTest, MpShape) {
  LitmusTest T = classicTest("MP");
  EXPECT_EQ(T.Threads.size(), 2u);
  EXPECT_EQ(T.Locations.size(), 2u);
  // One thread has two stores, the other two loads.
  std::multiset<size_t> Sizes;
  for (const Thread &Th : T.Threads)
    Sizes.insert(Th.Body.size());
  EXPECT_EQ(Sizes, (std::multiset<size_t>{2, 2}));
}

TEST(CycleGenTest, IriwHasFourThreads) {
  LitmusTest T = classicTest("IRIW");
  EXPECT_EQ(T.Threads.size(), 4u);
  EXPECT_EQ(T.Locations.size(), 2u);
}

TEST(CycleGenTest, FencedCyclesEmitFences) {
  LitmusTest T = classicTest("MP+fences");
  unsigned Fences = 0;
  for (const Thread &Th : T.Threads)
    forEachStmt(Th.Body, [&](const Stmt &S) {
      if (S.K == Stmt::Kind::Fence)
        ++Fences;
    });
  EXPECT_EQ(Fences, 2u);
}

TEST(CycleGenTest, DataDepUsesSourceRegister) {
  LitmusTest T = classicTest("LB+datas");
  bool SawDep = false;
  for (const Thread &Th : T.Threads)
    forEachStmt(Th.Body, [&](const Stmt &S) {
      if (S.K == Stmt::Kind::Store && S.Val.K == Expr::Kind::Add)
        SawDep = true;
    });
  EXPECT_TRUE(SawDep);
}

TEST(CycleGenTest, CoeOrientationIn22W) {
  // 2+2W's witness pins each location to its co-last write, which the
  // Coe edges orient against program order.
  LitmusTest T = classicTest("2+2W");
  SimProgram P = lowerLitmusC(T);
  SimResult Sc = simulateProgram(P, "sc");
  ASSERT_TRUE(Sc.ok());
  EXPECT_FALSE(finalConditionHolds(P, Sc)) << "2+2W witness must be "
                                              "SC-forbidden";
  SimResult Rc11 = simulateProgram(P, "rc11");
  EXPECT_TRUE(finalConditionHolds(P, Rc11));
}

namespace {

class WitnessForbiddenUnderScTest
    : public testing::TestWithParam<std::string> {};

} // namespace

TEST_P(WitnessForbiddenUnderScTest, CycleWitnessIsAnSCViolation) {
  // Every generated relaxation cycle witnesses a non-SC execution, so SC
  // must forbid it -- the diy construction's defining property.
  LitmusTest T = classicTest(GetParam());
  SimProgram P = lowerLitmusC(T);
  SimResult R = simulateProgram(P, "sc");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_FALSE(R.TimedOut);
  EXPECT_FALSE(finalConditionHolds(P, R)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Classics, WitnessForbiddenUnderScTest,
                         testing::ValuesIn(classicNames()));

TEST(RandomGenTest, DeterministicInSeed) {
  RandomGenOptions Opts;
  Opts.Seed = 7;
  Opts.Count = 8;
  std::vector<LitmusTest> A = generateRandomTests(Opts);
  std::vector<LitmusTest> B = generateRandomTests(Opts);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I].Final.toString(), B[I].Final.toString());
}

TEST(RandomGenTest, GeneratedTestsAreValidAndScForbidden) {
  RandomGenOptions Opts;
  Opts.Seed = 99;
  Opts.Count = 12;
  std::vector<LitmusTest> Tests = generateRandomTests(Opts);
  EXPECT_GE(Tests.size(), 6u);
  for (const LitmusTest &T : Tests) {
    EXPECT_TRUE(T.validate().empty()) << T.validate();
    SimProgram P = lowerLitmusC(T);
    SimOptions Budget;
    Budget.MaxSteps = 500'000;
    SimResult R = simulateProgram(P, "sc", Budget);
    ASSERT_TRUE(R.ok()) << R.Error;
    if (!R.TimedOut)
      EXPECT_FALSE(finalConditionHolds(P, R)) << T.Name;
  }
}

namespace {

/// Every register assignment in a body, duplicates included (unlike
/// assignedRegisters, which dedupes): the SSA-freshness check needs to
/// see a register assigned twice.
std::vector<std::string> allAssignments(const Thread &Th) {
  std::vector<std::string> Out;
  forEachStmt(Th.Body, [&](const Stmt &S) {
    if (!S.Dst.empty())
      Out.push_back(S.Dst);
  });
  return Out;
}

/// Structural well-formedness of one generated test, the property the
/// streamed campaign engine leans on: whatever the generator emits must
/// survive serialization, printing and re-parsing unchanged.
void expectWellFormed(const LitmusTest &T, uint64_t Seed) {
  std::string What = "seed " + std::to_string(Seed) + ", " + T.Name;
  // validate() covers def-before-use, declared locations, unique thread
  // names.
  EXPECT_EQ(T.validate(), "") << What;
  // The chain closed through at least one external edge, so the witness
  // spans threads and touches shared locations.
  EXPECT_GE(T.Threads.size(), 2u) << What;
  EXPECT_GE(T.Locations.size(), 1u) << What;
  // Registers are SSA-fresh: the generator never reuses a destination.
  std::map<std::string, std::set<std::string>> RegsByThread;
  for (const Thread &Th : T.Threads) {
    std::vector<std::string> Regs = allAssignments(Th);
    std::set<std::string> Unique(Regs.begin(), Regs.end());
    EXPECT_EQ(Unique.size(), Regs.size())
        << What << ": register assigned twice in " << Th.Name;
    RegsByThread[Th.Name] = std::move(Unique);
  }
  // The final-state predicate only constrains registers that exist in
  // the thread it names (keys look like "P1:r0") and locations that are
  // declared (keys look like "[y]").
  std::vector<std::string> Keys;
  T.Final.P.collectKeys(Keys);
  EXPECT_FALSE(Keys.empty()) << What;
  for (const std::string &Key : Keys) {
    if (Key.size() > 2 && Key.front() == '[' && Key.back() == ']') {
      EXPECT_NE(T.findLocation(Key.substr(1, Key.size() - 2)), nullptr)
          << What << ": predicate names undeclared location " << Key;
      continue;
    }
    size_t Colon = Key.find(':');
    ASSERT_NE(Colon, std::string::npos) << What << ": odd key " << Key;
    std::string Thread = Key.substr(0, Colon);
    std::string Reg = Key.substr(Colon + 1);
    auto It = RegsByThread.find(Thread);
    ASSERT_NE(It, RegsByThread.end())
        << What << ": predicate names unknown thread in " << Key;
    EXPECT_TRUE(It->second.count(Reg))
        << What << ": predicate reads undefined register in " << Key;
  }
  // Print -> parse -> print is a fixpoint: the printed form is the
  // corpus interchange format (diy-gen output, --corpus input), so a
  // test that mutates across the round-trip would corrupt campaigns.
  std::string Printed = printLitmusC(T);
  ErrorOr<LitmusTest> Reparsed = parseLitmusC(Printed);
  ASSERT_TRUE(Reparsed.hasValue()) << What << ": " << Reparsed.error();
  EXPECT_EQ(printLitmusC(*Reparsed), Printed) << What;
  EXPECT_EQ(Reparsed->validate(), "") << What;
}

} // namespace

TEST(RandomGenPropertyTest, HundredSeedsWellFormedAndRoundTrip) {
  // The property battery behind generative campaigns (ISSUE 4): across
  // 100 seeds, everything the generator can emit is structurally sound
  // and survives the printer/parser round-trip unchanged.
  size_t Total = 0;
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    RandomGenOptions Opts;
    Opts.Seed = Seed;
    Opts.Count = 4;
    std::vector<LitmusTest> Tests = generateRandomTests(Opts);
    EXPECT_FALSE(Tests.empty()) << "seed " << Seed;
    Total += Tests.size();
    for (const LitmusTest &T : Tests)
      expectWellFormed(T, Seed);
  }
  EXPECT_GE(Total, 300u) << "the attempt budget should rarely bite";
}

TEST(RandomGenPropertyTest, StreamMatchesBatchGeneration) {
  // RandomTestStream is the lazy form of generateRandomTests; a streamed
  // campaign is only deterministic if the two emit the same sequence.
  for (uint64_t Seed : {1ull, 7ull, 99ull, 54321ull}) {
    RandomGenOptions Opts;
    Opts.Seed = Seed;
    Opts.Count = 8;
    std::vector<LitmusTest> Batch = generateRandomTests(Opts);
    RandomTestStream Stream(Opts);
    LitmusTest T;
    size_t I = 0;
    while (Stream.next(T)) {
      ASSERT_LT(I, Batch.size()) << "seed " << Seed;
      EXPECT_EQ(printLitmusC(T), printLitmusC(Batch[I]))
          << "seed " << Seed << ", test " << I;
      ++I;
    }
    EXPECT_EQ(I, Batch.size()) << "seed " << Seed;
    EXPECT_EQ(Stream.produced(), Batch.size()) << "seed " << Seed;
    // Drained streams stay drained.
    EXPECT_FALSE(Stream.next(T)) << "seed " << Seed;
  }
}

TEST(RandomGenPropertyTest, DegenerateOptionPoolsDoNotDivideByZero) {
  // Options decoded from a journal may carry empty order pools; the
  // stream degrades to relaxed-only instead of crashing.
  RandomGenOptions Opts;
  Opts.Seed = 3;
  Opts.Count = 3;
  Opts.LoadOrders.clear();
  Opts.StoreOrders.clear();
  std::vector<LitmusTest> Tests = generateRandomTests(Opts);
  for (const LitmusTest &T : Tests)
    EXPECT_EQ(T.validate(), "") << T.Name;
}

TEST(ConfigTest, C11SuiteCoversTableIIIConstructs) {
  SuiteConfig C = SuiteConfig::c11();
  std::vector<LitmusTest> Suite = generateSuite(C);
  EXPECT_GT(Suite.size(), 500u);
  bool Fences = false, Ctrl = false, Data = false, NonAtomic = false,
       Wide = false, Unsigned8 = false;
  for (const LitmusTest &T : Suite) {
    for (const Thread &Th : T.Threads)
      forEachStmt(Th.Body, [&](const Stmt &S) {
        if (S.K == Stmt::Kind::Fence)
          Fences = true;
        if (S.K == Stmt::Kind::If)
          Ctrl = true;
        if (S.K == Stmt::Kind::Store && S.Val.K == Expr::Kind::Add)
          Data = true;
        if (S.K == Stmt::Kind::Store && S.Order == MemOrder::NA)
          NonAtomic = true;
      });
    for (const LocDecl &L : T.Locations) {
      if (L.Type.Bits == 64)
        Wide = true;
      if (L.Type.Bits == 8 && !L.Type.Signed)
        Unsigned8 = true;
    }
  }
  EXPECT_TRUE(Fences);
  EXPECT_TRUE(Ctrl);
  EXPECT_TRUE(Data);
  EXPECT_TRUE(NonAtomic);
  EXPECT_TRUE(Wide);
  EXPECT_TRUE(Unsigned8);
}

TEST(ConfigTest, SuiteRoundTripsThroughPrinterWithTypes) {
  // The c11 suite varies location types; diy-gen output is the corpus
  // interchange format, so the printed form must preserve them. (The
  // printer used to collapse every atomic type to atomic_int, silently
  // merging the suite's width variants once reparsed from a corpus.)
  SuiteConfig C = SuiteConfig::c11();
  C.Limit = 120;
  bool SawNonDefault = false;
  for (const LitmusTest &T : generateSuite(C)) {
    std::string Printed = printLitmusC(T);
    ErrorOr<LitmusTest> Reparsed = parseLitmusC(Printed);
    ASSERT_TRUE(Reparsed.hasValue()) << T.Name << ": " << Reparsed.error();
    EXPECT_EQ(printLitmusC(*Reparsed), Printed) << T.Name;
    ASSERT_EQ(Reparsed->Locations.size(), T.Locations.size()) << T.Name;
    for (size_t I = 0; I != T.Locations.size(); ++I) {
      EXPECT_TRUE(Reparsed->Locations[I].Type == T.Locations[I].Type)
          << T.Name << ": location " << T.Locations[I].Name;
      EXPECT_EQ(Reparsed->Locations[I].Atomic, T.Locations[I].Atomic)
          << T.Name << ": location " << T.Locations[I].Name;
      if (!(T.Locations[I].Type == IntType{32, true}))
        SawNonDefault = true;
    }
  }
  EXPECT_TRUE(SawNonDefault) << "suite slice never exercised a typed decl";
}

TEST(ConfigTest, NamesAreUnique) {
  SuiteConfig C = SuiteConfig::c11();
  C.Limit = 400;
  std::vector<LitmusTest> Suite = generateSuite(C);
  std::set<std::string> Names;
  for (const LitmusTest &T : Suite)
    EXPECT_TRUE(Names.insert(T.Name).second) << "duplicate " << T.Name;
}

TEST(ConfigTest, LimitIsRespected) {
  SuiteConfig C = SuiteConfig::c11();
  C.Limit = 17;
  EXPECT_EQ(generateSuite(C).size(), 17u);
}

TEST(ConfigTest, AcqConfigUsesAcquireLoads) {
  for (const LitmusTest &T : generateSuite(SuiteConfig::c11Acq()))
    for (const Thread &Th : T.Threads)
      forEachStmt(Th.Body, [&](const Stmt &S) {
        if (S.K == Stmt::Kind::Load)
          EXPECT_TRUE(S.Order == MemOrder::Acquire ||
                      S.Order == MemOrder::SeqCst);
      });
}

TEST(ClassicsTest, AllNamesConstruct) {
  for (const std::string &Name : classicNames()) {
    LitmusTest T = classicTest(Name);
    EXPECT_TRUE(T.validate().empty()) << Name << ": " << T.validate();
    EXPECT_GE(T.Threads.size(), 1u);
  }
}

TEST(ClassicsTest, PaperFiguresParse) {
  EXPECT_EQ(paperFig1().Threads.size(), 2u);
  EXPECT_EQ(paperFig7().Threads.size(), 2u);
  EXPECT_EQ(paperFig9().Threads.size(), 2u);
  EXPECT_EQ(paperFig10().Threads.size(), 2u);
  EXPECT_EQ(paperFig11().Threads.size(), 3u);
}

//===--- sim_test.cpp - herd-style enumerator tests -----------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "litmus/Parser.h"
#include "models/Registry.h"
#include "sim/Backend.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(CFrontendTest, PathsExpandBranches) {
  auto T = parseLitmusC(R"(C b
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  if (r0) { atomic_store_explicit(y, 2, memory_order_relaxed); }
}
exists (y=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  EXPECT_EQ(P.Threads[0].Paths.size(), 4u); // 2 branches -> 4 paths
}

TEST(CFrontendTest, ObservedFromPredicate) {
  LitmusTest T = classicTest("MP");
  SimProgram P = lowerLitmusC(T);
  unsigned Observed = 0;
  for (const SimThread &Th : P.Threads)
    Observed += Th.Observed.size();
  EXPECT_EQ(Observed, 2u);
}

TEST(CFrontendTest, TagsFollowOrders) {
  LitmusTest T = classicTest("MP+rel+acq");
  SimProgram P = lowerLitmusC(T);
  bool SawAcq = false, SawRel = false;
  for (const SimThread &Th : P.Threads)
    for (const SimPath &Path : Th.Paths)
      for (const SimOp &Op : Path.Ops) {
        if (Op.Tags.count("ACQ"))
          SawAcq = true;
        if (Op.WTags.count("REL"))
          SawRel = true;
      }
  EXPECT_TRUE(SawAcq);
  EXPECT_TRUE(SawRel);
}

TEST(SimulatorTest, MpOutcomeCount) {
  SimResult R = simulateC(classicTest("MP+rel+acq"), "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  // Stale read forbidden: three outcomes remain.
  EXPECT_EQ(R.Allowed.size(), 3u);
}

TEST(SimulatorTest, LbOutcomeCountUnderBothModels) {
  EXPECT_EQ(simulateC(classicTest("LB"), "rc11").Allowed.size(), 3u);
  EXPECT_EQ(simulateC(classicTest("LB"), "rc11+lb").Allowed.size(), 4u);
}

TEST(SimulatorTest, StatsArePopulated) {
  SimResult R = simulateC(classicTest("SB"), "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_GE(R.Stats.PathCombos, 1u);
  EXPECT_GT(R.Stats.RfCandidates, 0u);
  EXPECT_GT(R.Stats.ValueConsistent, 0u);
  EXPECT_GT(R.Stats.AllowedExecutions, 0u);
  EXPECT_GE(R.Stats.Seconds, 0.0);
}

TEST(SimulatorTest, BudgetExhaustionReportsTimeout) {
  SimOptions Tight;
  Tight.MaxSteps = 2;
  SimResult R = simulateC(classicTest("IRIW"), "rc11", Tight);
  EXPECT_TRUE(R.TimedOut);
}

TEST(SimulatorTest, CollectExecutionsForFig2) {
  SimOptions Opts;
  Opts.CollectExecutions = true;
  SimResult R = simulateC(paperFig1(), "rc11", Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  // The paper's Fig. 2 draws four candidate executions of which dabc is
  // forbidden; three distinct (rf, co) graphs remain (acbd and cabd are
  // the same axiomatic execution).
  EXPECT_EQ(R.Stats.AllowedExecutions, 3u);
  EXPECT_EQ(R.Executions.size(), 3u);
  for (const Execution &Ex : R.Executions) {
    EXPECT_GT(Ex.size(), 0u);
    EXPECT_FALSE(Ex.Rf.empty());
  }
}

TEST(SimulatorTest, RmwValueSemantics) {
  auto T = parseLitmusC(R"(C addtwice
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 2, memory_order_relaxed);
  int r1 = atomic_fetch_add_explicit(x, 3, memory_order_relaxed);
}
exists (P0:r0=0 /\ P0:r1=2 /\ x=5)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, FetchSubAndXchg) {
  auto T = parseLitmusC(R"(C subx
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_exchange_explicit(x, 7, memory_order_relaxed);
  int r1 = atomic_fetch_sub_explicit(x, 2, memory_order_relaxed);
}
exists (P0:r0=0 /\ P0:r1=7 /\ x=5)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, RmwAtomicityForbidsInterleaving) {
  // Two concurrent increments: final value must be 2, never 1.
  auto T = parseLitmusC(R"(C incs
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(finalConditionHolds(P, R)) << "lost update slipped through";
  Outcome Two;
  Two.set("[x]", Value(2));
  EXPECT_TRUE(R.Allowed.count(Two));
}

TEST(SimulatorTest, NoThinAirValues) {
  // LB where each store forwards the loaded *value*: observing 1 would
  // require the value to appear from thin air. Even rc11+lb (no
  // no-thin-air axiom) cannot show it -- concrete value resolution has
  // no stable fixpoint justifying it, exactly like herd.
  auto T = parseLitmusC(R"(C oota
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, r1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r1=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11+lb");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Allowed.size(), 1u) << outcomeSetToString(R.Allowed);
  EXPECT_FALSE(finalConditionHolds(P, R));
  // By contrast the constant-value variant (LB+datas) is fine under
  // rc11+lb: its stored values do not depend on the loads.
  LitmusTest Datas = classicTest("LB+datas");
  SimProgram P2 = lowerLitmusC(Datas);
  SimResult R2 = simulateProgram(P2, "rc11+lb");
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(finalConditionHolds(P2, R2));
}

TEST(SimulatorTest, BranchConstraintsPruneInfeasiblePaths) {
  auto T = parseLitmusC(R"(C feas
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) {
    atomic_store_explicit(y, 1, memory_order_relaxed);
  } else {
    atomic_store_explicit(y, 2, memory_order_relaxed);
  }
}
exists (y=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  // x is never written: r0 = 0 always, so y = 2 is the only final value.
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Allowed.size(), 1u);
  EXPECT_EQ(R.Allowed.begin()->lookup("[y]"), Value(2));
}

TEST(SimulatorTest, WidthTruncationOnNarrowLocations) {
  auto T = parseLitmusC(R"(C narrow
{ uint8_t *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 300, memory_order_relaxed);
}
exists (x=44)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R)) << "300 mod 256 = 44";
}

TEST(SimulatorTest, ConstWriteGetsTagged) {
  auto T = parseLitmusC(R"(C cw
{ const *c = 5; }
void P0(int* c) { *c = 6; }
exists (c=6)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  // A model flagging ConstWrite sees the tag.
  SimProgram P = lowerLitmusC(*T);
  ErrorOr<CatModel> M = parseModelText(
      "flag ~empty ConstWrite as const-violation\nacyclic po as ok\n");
  ASSERT_TRUE(M.hasValue());
  SimResult R = simulate(P, *M);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Flags.count("const-violation"));
}

TEST(SimulatorTest, FinalConditionQuantifiers) {
  auto T = parseLitmusC(R"(C q
{ *x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
forall (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(finalConditionHolds(P, R));
  P.Final.Q = FinalCond::Quant::NotExists;
  EXPECT_FALSE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  // The paper's Table II: Télétchat observes the same outcomes every
  // time.
  for (const char *Name : {"MP", "SB", "IRIW"}) {
    SimResult A = simulateC(classicTest(Name), "rc11");
    SimResult B = simulateC(classicTest(Name), "rc11");
    EXPECT_EQ(A.Allowed, B.Allowed) << Name;
  }
}

// ---------------------------------------------------------------------------
// Abstract-domain regressions (sim/AbsDomain.h): sweep-parity holes the
// symbolic-transform pruning must not reopen. Each test pins the rule
// by comparing outcome sets with pruning on, copy-chain-only, and off.

namespace {

/// Outcome sets under all three pruning modes must agree; returns the
/// pruning-on result for further assertions.
SimResult expectPruningParity(const SimProgram &P, const std::string &Model,
                              const std::string &What) {
  SimResult On = simulateProgram(P, Model);
  SimOptions CopyOnly;
  CopyOnly.RfTransformDomain = false;
  SimResult Copy = simulateProgram(P, Model, CopyOnly);
  SimOptions NoPrune;
  NoPrune.RfValuePruning = false;
  SimResult Off = simulateProgram(P, Model, NoPrune);
  EXPECT_TRUE(On.ok()) << What << ": " << On.Error;
  EXPECT_EQ(On.Allowed, Off.Allowed) << What << " (on vs off)";
  EXPECT_EQ(Copy.Allowed, Off.Allowed) << What << " (copy-only vs off)";
  EXPECT_EQ(On.Flags, Off.Flags) << What;
  EXPECT_EQ(On.Stats.ValueConsistent, Off.Stats.ValueConsistent) << What;
  EXPECT_EQ(On.Stats.AllowedExecutions, Off.Stats.AllowedExecutions)
      << What;
  // The copy attribution must reproduce the copy-chain-only baseline
  // exactly, and the split must account for every pruned pair.
  EXPECT_EQ(On.Stats.RfSourcesPrunedCopy, Copy.Stats.RfSourcesPruned)
      << What;
  EXPECT_EQ(On.Stats.RfSourcesPruned,
            On.Stats.RfSourcesPrunedCopy + On.Stats.RfSourcesPrunedXform)
      << What;
  return On;
}

} // namespace

TEST(AbsDomainRegressionTest, UninitialisedRegisterInArithmetic) {
  // Branches on a register that is never assigned, mixed into
  // arithmetic with a loaded value (the C validator refuses undefined
  // registers, but assembly lowering produces them, so build the
  // SimProgram directly). The concrete sweep zero-initialises
  // unassigned registers (herd's rule); the abstract pass must apply
  // the *same* default on its Reg fast path, inside compound
  // expressions, and when capturing constraints -- a mismatch would
  // prune assignments the fixpoint accepts (or break combo-infeasible
  // collapsing).
  SimProgram P;
  P.Name = "uninit-arith";
  SimLoc X;
  X.Name = "x";
  P.Locations.push_back(X);

  SimThread T0;
  T0.Name = "P0";
  SimPath Stores;
  for (uint64_t V : {uint64_t(1), uint64_t(2)}) {
    SimOp St;
    St.K = SimOp::Kind::Store;
    St.Addr = SimAddr::staticSym("x");
    St.Val = Expr::imm(Value(V));
    Stores.Ops.push_back(St);
  }
  T0.Paths.push_back(Stores);

  SimThread T1;
  T1.Name = "P1";
  T1.Observed.emplace_back("r0", "P1:r0");
  SimOp Ld;
  Ld.K = SimOp::Kind::Load;
  Ld.Dst = "r0";
  Ld.Addr = SimAddr::staticSym("x");
  SimOp Asn; // r2 = r0 + runinit, with runinit never assigned
  Asn.K = SimOp::Kind::Assign;
  Asn.Dst = "r2";
  Asn.Val = Expr::binary(Expr::Kind::Add, Expr::reg("r0"),
                         Expr::reg("runinit"));
  SimOp C; // (r2 - 1) != 0
  C.K = SimOp::Kind::Constraint;
  C.Val = Expr::binary(Expr::Kind::Sub, Expr::reg("r2"),
                       Expr::imm(Value(1)));
  C.ConstraintNonZero = true;
  SimPath P1;
  P1.Ops = {Ld, Asn, C};
  T1.Paths.push_back(P1);

  P.Threads = {T0, T1};
  P.Final.Q = FinalCond::Quant::Exists;

  SimResult On = expectPruningParity(P, "sc", "uninit-arith");
  // runinit reads as zero, so the constraint is r0 != 1: exactly the
  // value-1 candidate write is pruned from r0's rf list -- the capture
  // must have happened despite the unassigned register.
  EXPECT_GT(On.Stats.RfSourcesPruned, 0u);
  for (const Outcome &O : On.Allowed)
    EXPECT_NE(O.lookup("P1:r0"), Value(1));
}

TEST(AbsDomainRegressionTest, UninitialisedRegisterAloneInfeasible) {
  // A path constrained on the bare unassigned register mixed into
  // arithmetic yielding a constant: the abstract pass must fold it with
  // the zero default (constant-only capture), collapse the combo as
  // infeasible, and agree with the fixpoint's rejection.
  SimProgram P;
  P.Name = "uninit-bare";
  SimLoc Y;
  Y.Name = "y";
  P.Locations.push_back(Y);
  P.ObservedLocs.push_back("y");

  SimThread T0;
  T0.Name = "P0";
  // Taken path: demands rghost + 1 == 0 (never true), stores y = 1.
  {
    SimOp C;
    C.K = SimOp::Kind::Constraint;
    C.Val = Expr::binary(Expr::Kind::Add, Expr::reg("rghost"),
                         Expr::imm(Value(1)));
    C.ConstraintNonZero = false;
    SimOp St;
    St.K = SimOp::Kind::Store;
    St.Addr = SimAddr::staticSym("y");
    St.Val = Expr::imm(Value(1));
    SimPath Taken;
    Taken.Ops = {C, St};
    T0.Paths.push_back(Taken);
  }
  // Fallthrough path: demands rghost + 1 != 0 (always), stores y = 2.
  {
    SimOp C;
    C.K = SimOp::Kind::Constraint;
    C.Val = Expr::binary(Expr::Kind::Add, Expr::reg("rghost"),
                         Expr::imm(Value(1)));
    C.ConstraintNonZero = true;
    SimOp St;
    St.K = SimOp::Kind::Store;
    St.Addr = SimAddr::staticSym("y");
    St.Val = Expr::imm(Value(2));
    SimPath Fall;
    Fall.Ops = {C, St};
    T0.Paths.push_back(Fall);
  }
  P.Threads.push_back(T0);
  P.Final.Q = FinalCond::Quant::Exists;

  SimResult On = expectPruningParity(P, "sc", "uninit-bare");
  ASSERT_EQ(On.Allowed.size(), 1u);
  EXPECT_EQ(On.Allowed.begin()->lookup("[y]"), Value(2));
}

namespace {

/// A one-thread LL/SC program: exclusive load of x, exclusive store of
/// 1 to x with status register "s0", then a path constraint on s0.
/// \p StatusSuccess is the ISA's success value (0 on Arm/RISC-V, 1 on
/// MIPS); \p ConstrainSuccess picks which status the path demands.
SimProgram scStatusProgram(uint64_t StatusSuccess, bool ConstrainSuccess) {
  SimProgram P;
  P.Name = "sc-status";
  SimLoc X;
  X.Name = "x";
  P.Locations.push_back(X);
  P.ObservedLocs.push_back("x");

  SimOp Ld;
  Ld.K = SimOp::Kind::Load;
  Ld.Dst = "r0";
  Ld.Addr = SimAddr::staticSym("x");
  Ld.Exclusive = true;

  SimOp St;
  St.K = SimOp::Kind::Store;
  St.Dst = "s0"; // status register
  St.Addr = SimAddr::staticSym("x");
  St.Val = Expr::imm(Value(1));
  St.Exclusive = true;
  St.StatusSuccess = StatusSuccess;

  SimOp C;
  C.K = SimOp::Kind::Constraint;
  C.Val = Expr::reg("s0");
  // s0 nonzero <=> (StatusSuccess != 0) == success. The path demands
  // success iff ConstrainSuccess.
  C.ConstraintNonZero = ConstrainSuccess == (StatusSuccess != 0);

  SimThread T0;
  T0.Name = "P0";
  T0.Observed.emplace_back("r0", "P0:r0");
  SimPath Path;
  Path.Ops = {Ld, St, C};
  T0.Paths.push_back(Path);
  P.Threads.push_back(T0);

  Predicate True;
  True.K = Predicate::Kind::True;
  P.Final.P = True;
  P.Final.Q = FinalCond::Quant::Exists;
  return P;
}

} // namespace

TEST(AbsDomainRegressionTest, StoreConditionalStatusConstrained) {
  // The enumerator models store-conditionals herd-style: exclusive
  // pairs always succeed, so the status register is the ISA's success
  // value on every feasible path. The abstract pass hardcodes the same
  // constant -- sound exactly because the concrete sweep (the oracle
  // pruning must mirror) does too. Pin both directions, for both
  // success-value conventions:
  for (uint64_t Success : {uint64_t(0), uint64_t(1)}) {
    // A path demanding success is feasible; identical outcomes in all
    // three pruning modes.
    SimProgram Ok = scStatusProgram(Success, /*ConstrainSuccess=*/true);
    SimResult R = expectPruningParity(Ok, "sc", "sc-status-success");
    EXPECT_EQ(R.Allowed.size(), 1u);

    // A path demanding a *failed* store-conditional can never resolve:
    // pruning must collapse it as infeasible, the fixpoint must reject
    // it, and both must report the same (empty) outcome set.
    SimProgram Fail = scStatusProgram(Success, /*ConstrainSuccess=*/false);
    SimResult F = expectPruningParity(Fail, "sc", "sc-status-fail");
    EXPECT_TRUE(F.Allowed.empty());
  }
}

namespace {

/// Two threads around a 128-bit location: P0 stores the pair (5, 7);
/// P1 128-loads into half registers (rl, rh) and branches on arithmetic
/// over one half. The halves are bit-slice transforms of one read: the
/// transform domain prunes the init write, the copy-chain baseline
/// cannot.
SimProgram pairHalvesProgram() {
  SimProgram P;
  P.Name = "pair-halves";
  SimLoc X;
  X.Name = "x";
  X.Type = IntType{128, false};
  P.Locations.push_back(X);

  SimOp St;
  St.K = SimOp::Kind::Store;
  St.Addr = SimAddr::staticSym("x");
  St.Is128 = true;
  St.Val = Expr::imm(Value(5));
  St.ValHi = Expr::imm(Value(7));
  SimThread T0;
  T0.Name = "P0";
  SimPath P0;
  P0.Ops = {St};
  T0.Paths.push_back(P0);

  SimOp Ld;
  Ld.K = SimOp::Kind::Load;
  Ld.Dst = "rl";
  Ld.Dst2 = "rh";
  Ld.Addr = SimAddr::staticSym("x");
  Ld.Is128 = true;
  SimOp C;
  C.K = SimOp::Kind::Constraint;
  // (rh - 7) == 0: only the (5, 7) write satisfies this.
  C.Val = Expr::binary(Expr::Kind::Sub, Expr::reg("rh"),
                       Expr::imm(Value(7)));
  C.ConstraintNonZero = false;
  SimThread T1;
  T1.Name = "P1";
  T1.Observed.emplace_back("rl", "P1:rl");
  T1.Observed.emplace_back("rh", "P1:rh");
  SimPath P1;
  P1.Ops = {Ld, C};
  T1.Paths.push_back(P1);

  P.Threads = {T0, T1};
  Predicate True;
  True.K = Predicate::Kind::True;
  P.Final.P = True;
  P.Final.Q = FinalCond::Quant::Exists;
  return P;
}

} // namespace

TEST(AbsDomainRegressionTest, PairLoadHalvesAreBitSliceTransforms) {
  SimProgram P = pairHalvesProgram();
  SimResult On = expectPruningParity(P, "sc", "pair-halves");
  // Only the (5, 7) pair write resolves the constraint: one outcome.
  ASSERT_EQ(On.Allowed.size(), 1u);
  EXPECT_EQ(On.Allowed.begin()->lookup("P1:rl"), Value(5));
  EXPECT_EQ(On.Allowed.begin()->lookup("P1:rh"), Value(7));
  // The init write (0, 0) violates rh == 7 and must be pruned from the
  // candidate list -- possible only because the halves are modelled as
  // Lo64/Hi64 transforms of the read. The copy-chain baseline sees Top
  // and prunes nothing (pinned inside expectPruningParity via
  // RfSourcesPrunedCopy == baseline's total, here zero).
  EXPECT_EQ(On.Stats.RfSourcesPrunedCopy, 0u);
  EXPECT_GT(On.Stats.RfSourcesPrunedXform, 0u);
}

TEST(AbsDomainRegressionTest, PairLoadZeroRegisterFirstOperand) {
  // `ldxp xzr, xN` lowers to a 128-bit load with Dst == "" -- and the
  // concrete sweep then assigns NEITHER half register (both keep their
  // previous values). The abstract pass must mirror that gate: tracking
  // the second half as Hi64(read) anyway would prune candidates the
  // fixpoint accepts. Here rh is never written, so a constraint rh == 0
  // holds concretely for every rf choice; a mis-tracked Hi64 would
  // wrongly drop the (5, 7) pair write.
  SimProgram P = pairHalvesProgram();
  SimOp &Ld = P.Threads[1].Paths[0].Ops[0];
  ASSERT_EQ(Ld.K, SimOp::Kind::Load);
  Ld.Dst = ""; // zero-register first operand
  SimOp &C = P.Threads[1].Paths[0].Ops[1];
  ASSERT_EQ(C.K, SimOp::Kind::Constraint);
  C.Val = Expr::reg("rh");
  C.ConstraintNonZero = false; // rh == 0: true, rh is never assigned
  SimResult On = expectPruningParity(P, "sc", "pair-xzr");
  // Nothing is prunable: the halves are untracked because they are
  // unwritten, and every rf choice is value-consistent.
  EXPECT_EQ(On.Stats.RfSourcesPruned, 0u);
  EXPECT_GT(On.Stats.ValueConsistent, 1u);
}

TEST(AbsDomainRegressionTest, FoldInfeasibleComboKeepsCopyAttribution) {
  // A path whose infeasibility only the transform domain can prove
  // statically (r2 = r1 ^ r1 folds to 0, so `if (r2)` is a constant
  // contradiction) while the same path also carries a copy-class check
  // (`if (r0 - 1)`) the baseline prunes with. The transform domain
  // collapses the combo, but must still replay the baseline's filtering
  // for accounting so RfSourcesPrunedCopy == the baseline's
  // RfSourcesPruned (asserted inside expectPruningParity).
  auto T = parseLitmusC(R"(C foldinf
{ *x = 0; *y = 0; *z = 0; }
void P0(atomic_int* x, atomic_int* y, atomic_int* z) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
void P1(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 - 1) { atomic_store_explicit(z, 1, memory_order_relaxed); }
  else { atomic_store_explicit(z, 2, memory_order_relaxed); }
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  int r2 = r1 ^ r1;
  if (r2) { atomic_store_explicit(y, 1, memory_order_relaxed); }
}
exists (P1:r0=2)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult On = expectPruningParity(P, "rc11", "fold-infeasible");
  // The r0 checks prune in both domains (copy class), and the fold
  // collapses the taken-r2 combos only under the transform domain.
  EXPECT_GT(On.Stats.RfSourcesPrunedCopy, 0u);
  SimOptions CopyOnly;
  CopyOnly.RfTransformDomain = false;
  SimResult Copy = simulateProgram(P, "rc11", CopyOnly);
  EXPECT_LT(On.Stats.RfCandidates, Copy.Stats.RfCandidates)
      << "fold-condemned combos must collapse instead of enumerating";
}

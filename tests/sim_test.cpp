//===--- sim_test.cpp - herd-style enumerator tests -----------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "litmus/Parser.h"
#include "models/Registry.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(CFrontendTest, PathsExpandBranches) {
  auto T = parseLitmusC(R"(C b
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  if (r0) { atomic_store_explicit(y, 2, memory_order_relaxed); }
}
exists (y=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  EXPECT_EQ(P.Threads[0].Paths.size(), 4u); // 2 branches -> 4 paths
}

TEST(CFrontendTest, ObservedFromPredicate) {
  LitmusTest T = classicTest("MP");
  SimProgram P = lowerLitmusC(T);
  unsigned Observed = 0;
  for (const SimThread &Th : P.Threads)
    Observed += Th.Observed.size();
  EXPECT_EQ(Observed, 2u);
}

TEST(CFrontendTest, TagsFollowOrders) {
  LitmusTest T = classicTest("MP+rel+acq");
  SimProgram P = lowerLitmusC(T);
  bool SawAcq = false, SawRel = false;
  for (const SimThread &Th : P.Threads)
    for (const SimPath &Path : Th.Paths)
      for (const SimOp &Op : Path.Ops) {
        if (Op.Tags.count("ACQ"))
          SawAcq = true;
        if (Op.WTags.count("REL"))
          SawRel = true;
      }
  EXPECT_TRUE(SawAcq);
  EXPECT_TRUE(SawRel);
}

TEST(SimulatorTest, MpOutcomeCount) {
  SimResult R = simulateC(classicTest("MP+rel+acq"), "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  // Stale read forbidden: three outcomes remain.
  EXPECT_EQ(R.Allowed.size(), 3u);
}

TEST(SimulatorTest, LbOutcomeCountUnderBothModels) {
  EXPECT_EQ(simulateC(classicTest("LB"), "rc11").Allowed.size(), 3u);
  EXPECT_EQ(simulateC(classicTest("LB"), "rc11+lb").Allowed.size(), 4u);
}

TEST(SimulatorTest, StatsArePopulated) {
  SimResult R = simulateC(classicTest("SB"), "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_GE(R.Stats.PathCombos, 1u);
  EXPECT_GT(R.Stats.RfCandidates, 0u);
  EXPECT_GT(R.Stats.ValueConsistent, 0u);
  EXPECT_GT(R.Stats.AllowedExecutions, 0u);
  EXPECT_GE(R.Stats.Seconds, 0.0);
}

TEST(SimulatorTest, BudgetExhaustionReportsTimeout) {
  SimOptions Tight;
  Tight.MaxSteps = 2;
  SimResult R = simulateC(classicTest("IRIW"), "rc11", Tight);
  EXPECT_TRUE(R.TimedOut);
}

TEST(SimulatorTest, CollectExecutionsForFig2) {
  SimOptions Opts;
  Opts.CollectExecutions = true;
  SimResult R = simulateC(paperFig1(), "rc11", Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  // The paper's Fig. 2 draws four candidate executions of which dabc is
  // forbidden; three distinct (rf, co) graphs remain (acbd and cabd are
  // the same axiomatic execution).
  EXPECT_EQ(R.Stats.AllowedExecutions, 3u);
  EXPECT_EQ(R.Executions.size(), 3u);
  for (const Execution &Ex : R.Executions) {
    EXPECT_GT(Ex.size(), 0u);
    EXPECT_FALSE(Ex.Rf.empty());
  }
}

TEST(SimulatorTest, RmwValueSemantics) {
  auto T = parseLitmusC(R"(C addtwice
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 2, memory_order_relaxed);
  int r1 = atomic_fetch_add_explicit(x, 3, memory_order_relaxed);
}
exists (P0:r0=0 /\ P0:r1=2 /\ x=5)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, FetchSubAndXchg) {
  auto T = parseLitmusC(R"(C subx
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_exchange_explicit(x, 7, memory_order_relaxed);
  int r1 = atomic_fetch_sub_explicit(x, 2, memory_order_relaxed);
}
exists (P0:r0=0 /\ P0:r1=7 /\ x=5)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, RmwAtomicityForbidsInterleaving) {
  // Two concurrent increments: final value must be 2, never 1.
  auto T = parseLitmusC(R"(C incs
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(finalConditionHolds(P, R)) << "lost update slipped through";
  Outcome Two;
  Two.set("[x]", Value(2));
  EXPECT_TRUE(R.Allowed.count(Two));
}

TEST(SimulatorTest, NoThinAirValues) {
  // LB where each store forwards the loaded *value*: observing 1 would
  // require the value to appear from thin air. Even rc11+lb (no
  // no-thin-air axiom) cannot show it -- concrete value resolution has
  // no stable fixpoint justifying it, exactly like herd.
  auto T = parseLitmusC(R"(C oota
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, r1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r1=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11+lb");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Allowed.size(), 1u) << outcomeSetToString(R.Allowed);
  EXPECT_FALSE(finalConditionHolds(P, R));
  // By contrast the constant-value variant (LB+datas) is fine under
  // rc11+lb: its stored values do not depend on the loads.
  LitmusTest Datas = classicTest("LB+datas");
  SimProgram P2 = lowerLitmusC(Datas);
  SimResult R2 = simulateProgram(P2, "rc11+lb");
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(finalConditionHolds(P2, R2));
}

TEST(SimulatorTest, BranchConstraintsPruneInfeasiblePaths) {
  auto T = parseLitmusC(R"(C feas
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) {
    atomic_store_explicit(y, 1, memory_order_relaxed);
  } else {
    atomic_store_explicit(y, 2, memory_order_relaxed);
  }
}
exists (y=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  // x is never written: r0 = 0 always, so y = 2 is the only final value.
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Allowed.size(), 1u);
  EXPECT_EQ(R.Allowed.begin()->lookup("[y]"), Value(2));
}

TEST(SimulatorTest, WidthTruncationOnNarrowLocations) {
  auto T = parseLitmusC(R"(C narrow
{ uint8_t *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 300, memory_order_relaxed);
}
exists (x=44)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(P, R)) << "300 mod 256 = 44";
}

TEST(SimulatorTest, ConstWriteGetsTagged) {
  auto T = parseLitmusC(R"(C cw
{ const *c = 5; }
void P0(int* c) { *c = 6; }
exists (c=6)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  // A model flagging ConstWrite sees the tag.
  SimProgram P = lowerLitmusC(*T);
  ErrorOr<CatModel> M = parseModelText(
      "flag ~empty ConstWrite as const-violation\nacyclic po as ok\n");
  ASSERT_TRUE(M.hasValue());
  SimResult R = enumerateExecutions(P, *M);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Flags.count("const-violation"));
}

TEST(SimulatorTest, FinalConditionQuantifiers) {
  auto T = parseLitmusC(R"(C q
{ *x = 0; }
void P0(atomic_int* x) { atomic_store_explicit(x, 1, memory_order_relaxed); }
forall (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, "rc11");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(finalConditionHolds(P, R));
  P.Final.Q = FinalCond::Quant::NotExists;
  EXPECT_FALSE(finalConditionHolds(P, R));
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  // The paper's Table II: Télétchat observes the same outcomes every
  // time.
  for (const char *Name : {"MP", "SB", "IRIW"}) {
    SimResult A = simulateC(classicTest(Name), "rc11");
    SimResult B = simulateC(classicTest(Name), "rc11");
    EXPECT_EQ(A.Allowed, B.Allowed) << Name;
  }
}

//===--- cat_test.cpp - Cat lexer, parser, evaluator tests ----------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "cat/Eval.h"
#include "cat/Lexer.h"
#include "cat/Parser.h"
#include "models/Registry.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// A tiny two-thread execution: init writes ix, iy; P0: Wx=1, Wy=1 (po);
/// P1: Ry=1, Rx=0 (po); rf: Wy->Ry, ix->Rx; co: ix->Wx, iy->Wy.
/// This is the classic MP "stale read" candidate.
Execution mpExecution() {
  Execution Ex;
  auto Add = [&](EventKind K, unsigned Thread, const char *Loc, uint64_t V,
                 std::set<std::string> Tags = {}) {
    Event E;
    E.Id = Ex.Events.size();
    E.Kind = K;
    E.Thread = Thread;
    E.Loc = Loc;
    E.Val = Value(V);
    E.Tags = std::move(Tags);
    Ex.Events.push_back(E);
    return E.Id;
  };
  unsigned Ix = Add(EventKind::Write, Event::InitThread, "x", 0, {"IW"});
  unsigned Iy = Add(EventKind::Write, Event::InitThread, "y", 0, {"IW"});
  unsigned Wx = Add(EventKind::Write, 0, "x", 1, {"RLX", "ATOMIC"});
  unsigned Wy = Add(EventKind::Write, 0, "y", 1, {"RLX", "ATOMIC"});
  unsigned Ry = Add(EventKind::Read, 1, "y", 1, {"ACQ", "ATOMIC"});
  unsigned Rx = Add(EventKind::Read, 1, "x", 0, {"RLX", "ATOMIC"});
  Ex.resizeRelations();
  for (unsigned Init : {Ix, Iy})
    for (unsigned E : {Wx, Wy, Ry, Rx})
      Ex.Po.set(Init, E);
  Ex.Po.set(Wx, Wy);
  Ex.Po.set(Ry, Rx);
  Ex.Rf.set(Wy, Ry);
  Ex.Rf.set(Ix, Rx);
  Ex.Co.set(Ix, Wx);
  Ex.Co.set(Iy, Wy);
  return Ex;
}

ModelVerdict evalOn(const char *ModelText, const Execution &Ex) {
  ErrorOr<CatModel> M = parseCat(ModelText);
  EXPECT_TRUE(M.hasValue()) << (M.hasValue() ? "" : M.error());
  return evaluateCat(*M, Ex);
}

} // namespace

TEST(CatLexerTest, TokensAndIdents) {
  std::vector<CatToken> Toks = lexCat("let po-loc = po & loc");
  ASSERT_GE(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].K, CatToken::Kind::Keyword);
  EXPECT_EQ(Toks[1].Text, "po-loc");
  EXPECT_EQ(Toks[3].Text, "po");
  EXPECT_EQ(Toks[4].Text, "&");
}

TEST(CatLexerTest, DottedIdentifiers) {
  std::vector<CatToken> Toks = lexCat("fencerel(DMB.ISHLD)");
  EXPECT_EQ(Toks[2].Text, "DMB.ISHLD");
}

TEST(CatLexerTest, PostfixOperators) {
  std::vector<CatToken> Toks = lexCat("r^-1 r^+ r^*");
  EXPECT_EQ(Toks[1].K, CatToken::Kind::InvOp);
  EXPECT_EQ(Toks[3].K, CatToken::Kind::PlusOp);
  EXPECT_EQ(Toks[5].K, CatToken::Kind::StarOp);
}

TEST(CatLexerTest, CommentsNest) {
  std::vector<CatToken> Toks = lexCat("(* a (* b *) c *) let x = 0");
  EXPECT_EQ(Toks[0].K, CatToken::Kind::Keyword);
  EXPECT_EQ(Toks[0].Text, "let");
}

TEST(CatLexerTest, LineComments) {
  std::vector<CatToken> Toks = lexCat("// nothing\nacyclic po");
  EXPECT_EQ(Toks[0].Text, "acyclic");
}

TEST(CatLexerTest, ReportsBadCharacter) {
  std::vector<CatToken> Toks = lexCat("let x = $");
  EXPECT_EQ(Toks.back().K, CatToken::Kind::End);
  EXPECT_FALSE(Toks.back().Text.empty());
}

TEST(CatParserTest, ModelNameAndStatements) {
  ErrorOr<CatModel> M = parseCat("MYMODEL\nlet a = po\nacyclic a as ax\n");
  ASSERT_TRUE(M.hasValue()) << M.error();
  EXPECT_EQ(M->Name, "MYMODEL");
  ASSERT_EQ(M->Stmts.size(), 2u);
  EXPECT_EQ(M->Stmts[1].Check.Name, "ax");
}

TEST(CatParserTest, PrecedenceUnionLoosest) {
  // a | b ; c parses as a | (b ; c).
  ErrorOr<CatModel> M = parseCat("let x = po | rf ; co\n");
  ASSERT_TRUE(M.hasValue()) << M.error();
  const CatExpr &E = M->Stmts[0].Bindings[0].Body;
  EXPECT_EQ(E.K, CatExpr::Kind::Union);
  EXPECT_EQ(E.Ops[1].K, CatExpr::Kind::Seq);
}

TEST(CatParserTest, LetRecAnd) {
  ErrorOr<CatModel> M =
      parseCat("let rec a = b and b = a | po\nacyclic a\n");
  ASSERT_TRUE(M.hasValue()) << M.error();
  EXPECT_EQ(M->Stmts[0].K, CatStmt::Kind::LetRec);
  EXPECT_EQ(M->Stmts[0].Bindings.size(), 2u);
}

TEST(CatParserTest, FlagAndNegation) {
  ErrorOr<CatModel> M = parseCat("flag ~empty po as races\n");
  ASSERT_TRUE(M.hasValue()) << M.error();
  EXPECT_TRUE(M->Stmts[0].Check.IsFlag);
  EXPECT_TRUE(M->Stmts[0].Check.Negated);
  EXPECT_EQ(M->Stmts[0].Check.Name, "races");
}

TEST(CatParserTest, ShowIsDiscarded) {
  ErrorOr<CatModel> M = parseCat("show po as myrel\nacyclic po\n");
  ASSERT_TRUE(M.hasValue()) << M.error();
  EXPECT_EQ(M->Stmts.size(), 1u);
}

TEST(CatParserTest, ErrorOnGarbage) {
  EXPECT_FALSE(parseCat("let = po\n").hasValue());
  EXPECT_FALSE(parseCat("acyclic (po\n").hasValue());
  EXPECT_FALSE(parseCat("frobnicate po\n").hasValue());
}

TEST(CatEvalTest, BaseRelations) {
  Execution Ex = mpExecution();
  // fr = rf^-1;co: Rx read init x, init co-before Wx => fr(Rx, Wx).
  EXPECT_FALSE(evalOn("acyclic fr as a\n", Ex).Allowed
                   ? false
                   : true); // fr acyclic here
  ModelVerdict V = evalOn("empty fr as nofr\n", Ex);
  EXPECT_FALSE(V.Allowed); // fr is nonempty
  EXPECT_EQ(V.FailedChecks, std::vector<std::string>{"nofr"});
}

TEST(CatEvalTest, ScForbidsMpStaleRead) {
  // po | com has a cycle in the MP stale-read candidate under SC.
  ModelVerdict V =
      evalOn("let com = rf | co | fr\nacyclic po | com as sc\n",
             mpExecution());
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_FALSE(V.Allowed);
}

TEST(CatEvalTest, TagSetsResolve) {
  // ACQ tagged on Ry only.
  ModelVerdict V = evalOn("empty [ACQ] as noacq\n", mpExecution());
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_FALSE(V.Allowed);
  // Unknown tags are empty sets, not errors.
  ModelVerdict V2 = evalOn("empty [NOSUCHTAG] as none\n", mpExecution());
  ASSERT_TRUE(V2.ok()) << V2.Error;
  EXPECT_TRUE(V2.Allowed);
}

TEST(CatEvalTest, SetOperations) {
  Execution Ex = mpExecution();
  // R and W partition the memory events; M = R | W.
  ModelVerdict V =
      evalOn("empty (R & W) as disjoint\nempty (M \\ (R | W)) as covered\n",
             Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
}

TEST(CatEvalTest, CrossAndBracket) {
  Execution Ex = mpExecution();
  // [W] ; (W * R) ; [R] is nonempty (some write, some read).
  ModelVerdict V = evalOn("empty [W]; (W * R); [R] as x\n", Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_FALSE(V.Allowed);
}

TEST(CatEvalTest, DomainRange) {
  Execution Ex = mpExecution();
  // domain(rf) are writes; range(rf) are reads.
  ModelVerdict V = evalOn(
      "empty (domain(rf) \\ W) as d\nempty (range(rf) \\ R) as r\n", Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
}

TEST(CatEvalTest, FenceRel) {
  // Rebuild the MP execution with a DMB ISH between P0's writes.
  Execution Ex = mpExecution();
  Event F;
  F.Id = Ex.Events.size();
  F.Kind = EventKind::Fence;
  F.Thread = 0;
  F.Tags = {"DMB.ISH"};
  Ex.Events.push_back(F);
  Ex.resizeRelations(); // relations regrown for 7 events
  // po: init->all, Wx -> F -> Wy, Ry -> Rx (ids: 0=ix 1=iy 2=Wx 3=Wy
  // 4=Ry 5=Rx 6=F).
  for (unsigned Init : {0u, 1u})
    for (unsigned E = 2; E != Ex.size(); ++E)
      Ex.Po.set(Init, E);
  Ex.Po.set(2, 6);
  Ex.Po.set(6, 3);
  Ex.Po.set(2, 3);
  Ex.Po.set(4, 5);
  Ex.Rf.set(3, 4);
  Ex.Rf.set(0, 5);
  Ex.Co.set(0, 2);
  Ex.Co.set(1, 3);
  ModelVerdict V = evalOn("empty fencerel(DMB.ISH) & (W * W) as f\n", Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_FALSE(V.Allowed) << "Wx -[fence]-> Wy should be related";
}

TEST(CatEvalTest, LetRecFixpoint) {
  // Transitive closure via recursion: rec r = po | (r; r) equals po^+.
  Execution Ex = mpExecution();
  ModelVerdict V = evalOn(
      "let rec r = po | (r; r)\nempty (r \\ po^+) as sub\n"
      "empty (po^+ \\ r) as sup\n",
      Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
}

TEST(CatEvalTest, ZeroAdapts) {
  Execution Ex = mpExecution();
  ModelVerdict V = evalOn("let a = 0 | po\nempty (a \\ po) as same\n"
                          "empty (0 & R) as zs\n",
                          Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
}

TEST(CatEvalTest, TypeErrors) {
  Execution Ex = mpExecution();
  EXPECT_FALSE(evalOn("acyclic R as bad\n", Ex).ok());
  EXPECT_FALSE(evalOn("let x = po & R\nacyclic x\n", Ex).ok());
  EXPECT_FALSE(evalOn("let x = po * po\nacyclic x\n", Ex).ok());
}

TEST(CatEvalTest, FlagsFire) {
  Execution Ex = mpExecution();
  ModelVerdict V = evalOn("flag ~empty rf as hasrf\nacyclic po as ok\n", Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed); // flags do not forbid
  EXPECT_TRUE(V.hasFlag("hasrf"));
}

TEST(CatEvalTest, IrreflexiveCheck) {
  Execution Ex = mpExecution();
  ModelVerdict V = evalOn("irreflexive po as irr\n", Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
  ModelVerdict V2 = evalOn("irreflexive (po; po^-1) as irr\n", Ex);
  ASSERT_TRUE(V2.ok()) << V2.Error;
  EXPECT_FALSE(V2.Allowed);
}

TEST(CatEvalTest, ExtIntPartition) {
  Execution Ex = mpExecution();
  ModelVerdict V = evalOn(
      "empty (rfe & rfi) as disjoint\nempty (rf \\ (rfe | rfi)) as all\n",
      Ex);
  ASSERT_TRUE(V.ok()) << V.Error;
  EXPECT_TRUE(V.Allowed);
}

//===----------------------------------------------------------------------===//
// CatEvaluator: incremental evaluation vs the one-shot evaluator.
//===----------------------------------------------------------------------===//

namespace {

/// Candidate variants of the MP skeleton: same events, po, kinds, locs
/// and tags, different rf/co -- exactly what the enumerator feeds one
/// combo's evaluator.
std::vector<Execution> mpCandidates() {
  std::vector<Execution> Out;
  // Event ids in mpExecution(): 0=ix 1=iy 2=Wx 3=Wy 4=Ry 5=Rx.
  struct Choice {
    std::vector<std::pair<unsigned, unsigned>> Rf, Co;
  };
  std::vector<Choice> Choices = {
      {{{3, 4}, {0, 5}}, {{0, 2}, {1, 3}}},  // stale read of x
      {{{3, 4}, {2, 5}}, {{0, 2}, {1, 3}}},  // reads both new values
      {{{1, 4}, {0, 5}}, {{0, 2}, {1, 3}}},  // reads both inits
      {{{1, 4}, {2, 5}}, {{0, 2}, {1, 3}}},
  };
  for (const Choice &C : Choices) {
    Execution Ex = mpExecution();
    Ex.Rf = Relation(Ex.size());
    Ex.Co = Relation(Ex.size());
    for (auto [W, R] : C.Rf)
      Ex.Rf.set(W, R);
    for (auto [A, B] : C.Co)
      Ex.Co.set(A, B);
    Out.push_back(std::move(Ex));
  }
  return Out;
}

/// Mixes stable lets/let recs/checks/flags (po, loc, tag sets) with
/// dynamic ones (rf, co, fr) to exercise both layers.
const char *MixedModel = R"CAT(MIXED
let pol = po & loc
let atoms = ATOMIC | IW
let rec ppo = pol | (ppo; ppo)
let com = rf | co | fr
let rec chb = com | (chb; po)
acyclic po as stable-acyclic
irreflexive ppo as stable-irr
empty ((W * R) & loc & int) \ _ * _ as stable-empty
acyclic com | pol as dyn-coherence
flag ~empty ((W * R) & loc & ext) as stable-flag
flag ~empty rfe as dyn-flag
)CAT";

void expectSameVerdict(const ModelVerdict &A, const ModelVerdict &B,
                       const std::string &What) {
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.Allowed, B.Allowed) << What;
  EXPECT_EQ(A.FailedChecks, B.FailedChecks) << What;
  EXPECT_EQ(A.Flags, B.Flags) << What;
}

} // namespace

TEST(CatEvaluatorTest, IncrementalMatchesOneShot) {
  ErrorOr<CatModel> M = parseCat(MixedModel);
  ASSERT_TRUE(M.hasValue()) << M.error();
  for (bool AllStatic : {true, false}) {
    CatEvaluator Eval(*M);
    Eval.enterCombo(AllStatic);
    for (const Execution &Ex : mpCandidates()) {
      ModelVerdict Inc = Eval.evaluate(Ex);
      ModelVerdict Ref = evaluateCat(*M, Ex);
      expectSameVerdict(Ref, Inc,
                        AllStatic ? "all-static" : "conservative");
    }
    // The stable layer must have served real work: with all-static
    // combos, loc/tag-derived bindings join the layer; conservatively,
    // only po-derived work (here: the "acyclic po" check) does.
    if (AllStatic)
      EXPECT_GT(Eval.stats().BindingEvalsAvoided, 0u);
    EXPECT_GT(Eval.stats().CheckEvalsAvoided, 0u);
  }
}

TEST(CatEvaluatorTest, RegistryModelsMatchOneShot) {
  // The embedded production models, same skeleton-sharing stream.
  for (const char *Name : {"rc11", "sc", "aarch64"}) {
    const CatModel &M = getModel(Name);
    CatEvaluator Eval(M);
    Eval.enterCombo(/*AllStatic=*/true);
    for (const Execution &Ex : mpCandidates())
      expectSameVerdict(evaluateCat(M, Ex), Eval.evaluate(Ex), Name);
  }
}

TEST(CatEvaluatorTest, StableLayerIsShareable) {
  ErrorOr<CatModel> M = parseCat(MixedModel);
  ASSERT_TRUE(M.hasValue()) << M.error();
  std::vector<Execution> Cands = mpCandidates();

  CatEvaluator A(*M);
  A.enterCombo(true);
  ModelVerdict VA = A.evaluate(Cands[0]);
  ASSERT_TRUE(A.stableLayer() != nullptr);

  // A second evaluator adopting A's layer must not rebuild it and must
  // agree on every candidate.
  CatEvaluator B(*M);
  B.enterCombo(true, A.stableLayer());
  EXPECT_EQ(B.stableLayer(), A.stableLayer());
  expectSameVerdict(VA, B.evaluate(Cands[0]), "adopted layer");
  for (const Execution &Ex : Cands)
    expectSameVerdict(evaluateCat(*M, Ex), B.evaluate(Ex), "adopted layer");
  EXPECT_EQ(B.stableLayer(), A.stableLayer());
}

TEST(CatEvaluatorTest, NoCacheModeMatchesOneShot) {
  // setCaching(false) is the enumerator's honest baseline: identical
  // verdicts, no layer, no served work.
  ErrorOr<CatModel> M = parseCat(MixedModel);
  ASSERT_TRUE(M.hasValue()) << M.error();
  CatEvaluator Eval(*M);
  Eval.setCaching(false);
  Eval.enterCombo(true);
  for (const Execution &Ex : mpCandidates())
    expectSameVerdict(evaluateCat(*M, Ex), Eval.evaluate(Ex), "no-cache");
  EXPECT_EQ(Eval.stableLayer(), nullptr);
  EXPECT_EQ(Eval.stats().BindingEvalsAvoided, 0u);
  EXPECT_EQ(Eval.stats().CheckEvalsAvoided, 0u);
}

TEST(CatEvaluatorTest, EnterComboInvalidatesLayer) {
  ErrorOr<CatModel> M = parseCat(MixedModel);
  ASSERT_TRUE(M.hasValue()) << M.error();
  CatEvaluator Eval(*M);
  Eval.enterCombo(true);
  (void)Eval.evaluate(mpCandidates()[0]);
  auto First = Eval.stableLayer();
  ASSERT_TRUE(First != nullptr);
  Eval.enterCombo(true); // new combo: the old layer must not leak in
  EXPECT_EQ(Eval.stableLayer(), nullptr);
  (void)Eval.evaluate(mpCandidates()[1]);
  EXPECT_NE(Eval.stableLayer(), First);
}

TEST(CatEvaluatorTest, StableErrorsMatchOneShotOrder) {
  // A type error in a *stable* binding must surface identically for
  // every candidate, and dynamic errors earlier in the model win.
  const char *StableErr = "let x = po & R\nacyclic x as c\n";
  const char *DynFirst = "acyclic (rf * rf) as d\nlet x = po & R\n"
                         "acyclic x as c\n";
  // One statement mixing a dynamic erroring binding with a later stable
  // erroring binding: the dynamic one comes first in evaluation order.
  const char *MixedLet = "let a = rf * rf and b = po & R\n"
                         "acyclic po as c\n";
  for (const char *Text : {StableErr, DynFirst, MixedLet}) {
    ErrorOr<CatModel> M = parseCat(Text);
    ASSERT_TRUE(M.hasValue()) << M.error();
    CatEvaluator Eval(*M);
    Eval.enterCombo(true);
    for (const Execution &Ex : mpCandidates()) {
      ModelVerdict Inc = Eval.evaluate(Ex);
      ModelVerdict Ref = evaluateCat(*M, Ex);
      EXPECT_FALSE(Inc.ok());
      EXPECT_EQ(Ref.Error, Inc.Error);
    }
  }
}

//===--- canon_test.cpp - Canonical-form identity battery -----------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the canonical form of litmus/Canon.h, the identity that corpus
/// dedupe and the cross-test skeleton cache key on:
///
///   - idempotence: canonicalizing the canonical test reproduces the
///     exact Text and Key;
///   - invariance: random thread/location/register renamings (including
///     thread reorderings) canonicalize to the same Text and Key;
///   - separation: the classic families are pairwise distinct;
///   - outcome round-trip: the stored renaming maps a representative's
///     simulated outcome set byte-identically onto a renamed duplicate's.
///
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "diy/Generator.h"
#include "litmus/Canon.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <string>
#include <vector>

using namespace telechat;

namespace {

// A random semantics-preserving renaming: fresh location names (keeping
// declaration order -- it fixes simulated addresses, so reordering is a
// different test), fresh thread and per-thread register names, and an
// optional thread reorder. Walks the AST independently of Canon.cpp so
// the test does not inherit the implementation's traversal bugs.

std::string mapped(const std::map<std::string, std::string> &M,
                   const std::string &Name) {
  auto It = M.find(Name);
  return It == M.end() ? Name : It->second;
}

void renameExpr(Expr &E, const std::map<std::string, std::string> &Regs) {
  if (E.K == Expr::Kind::Reg)
    E.RegName = mapped(Regs, E.RegName);
  for (Expr &Op : E.Ops)
    renameExpr(Op, Regs);
}

void renameBody(std::vector<Stmt> &Body,
                const std::map<std::string, std::string> &Locs,
                const std::map<std::string, std::string> &Regs) {
  for (Stmt &S : Body) {
    if (!S.Dst.empty())
      S.Dst = mapped(Regs, S.Dst);
    if (!S.Loc.empty())
      S.Loc = mapped(Locs, S.Loc);
    renameExpr(S.Val, Regs);
    renameExpr(S.Cond, Regs);
    renameBody(S.Then, Locs, Regs);
    renameBody(S.Else, Locs, Regs);
  }
}

void renamePredicate(
    Predicate &P, const std::map<std::string, std::string> &Threads,
    const std::map<std::string, std::string> &Locs,
    const std::map<std::string, std::map<std::string, std::string>> &Regs) {
  if (P.K == Predicate::Kind::Atom) {
    if (P.A.K == PredAtom::Kind::LocEq) {
      P.A.Name = mapped(Locs, P.A.Name);
    } else {
      auto It = Regs.find(P.A.Thread);
      if (It != Regs.end())
        P.A.Name = mapped(It->second, P.A.Name);
      P.A.Thread = mapped(Threads, P.A.Thread);
    }
  }
  for (Predicate &Op : P.Ops)
    renamePredicate(Op, Threads, Locs, Regs);
}

void collectBodyRegs(const std::vector<Stmt> &Body,
                     std::vector<std::string> &Out) {
  for (const Stmt &S : Body) {
    S.Val.collectRegs(Out);
    S.Cond.collectRegs(Out);
    if (!S.Dst.empty())
      Out.push_back(S.Dst);
    collectBodyRegs(S.Then, Out);
    collectBodyRegs(S.Else, Out);
  }
}

void collectFinalRegs(const Predicate &P, const std::string &Thread,
                      std::vector<std::string> &Out) {
  if (P.K == Predicate::Kind::Atom && P.A.K == PredAtom::Kind::RegEq &&
      P.A.Thread == Thread)
    Out.push_back(P.A.Name);
  for (const Predicate &Op : P.Ops)
    collectFinalRegs(Op, Thread, Out);
}

LitmusTest shuffledRename(const LitmusTest &T, uint64_t Seed,
                          bool PermuteThreads) {
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE);
  LitmusTest V = T;
  V.Name = T.Name + "-renamed";

  std::map<std::string, std::string> Locs;
  {
    std::vector<size_t> Idx(T.Locations.size());
    std::iota(Idx.begin(), Idx.end(), size_t(0));
    std::shuffle(Idx.begin(), Idx.end(), Rng);
    for (size_t I = 0; I != T.Locations.size(); ++I) {
      Locs[T.Locations[I].Name] = "loc_" + std::to_string(Idx[I]);
      V.Locations[I].Name = Locs[T.Locations[I].Name];
    }
  }

  std::map<std::string, std::string> Threads;
  {
    std::vector<size_t> Idx(T.Threads.size());
    std::iota(Idx.begin(), Idx.end(), size_t(0));
    std::shuffle(Idx.begin(), Idx.end(), Rng);
    for (size_t I = 0; I != T.Threads.size(); ++I)
      Threads[T.Threads[I].Name] = "Wrk" + std::to_string(Idx[I]);
  }

  std::map<std::string, std::map<std::string, std::string>> Regs;
  for (size_t I = 0; I != T.Threads.size(); ++I) {
    const Thread &Th = T.Threads[I];
    std::vector<std::string> Order;
    collectBodyRegs(Th.Body, Order);
    collectFinalRegs(T.Final.P, Th.Name, Order);
    std::vector<std::string> Unique;
    for (const std::string &R : Order)
      if (std::find(Unique.begin(), Unique.end(), R) == Unique.end())
        Unique.push_back(R);
    std::vector<size_t> Idx(Unique.size());
    std::iota(Idx.begin(), Idx.end(), size_t(0));
    std::shuffle(Idx.begin(), Idx.end(), Rng);
    std::map<std::string, std::string> &M = Regs[Th.Name];
    for (size_t J = 0; J != Unique.size(); ++J)
      M[Unique[J]] = "q" + std::to_string(Idx[J]);
    renameBody(V.Threads[I].Body, Locs, M);
    V.Threads[I].Name = Threads[Th.Name];
  }

  renamePredicate(V.Final.P, Threads, Locs, Regs);
  if (PermuteThreads)
    std::shuffle(V.Threads.begin(), V.Threads.end(), Rng);
  return V;
}

} // namespace

// Canonicalizing the canonical test must reproduce the exact text and
// key -- the fixed point that makes CanonKey an identity.
TEST(CanonTest, IdempotenceBattery) {
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue;
    const LitmusTest &T = Tests.front();
    std::string What = "seed " + std::to_string(Seed) + "\n" + printLitmusC(T);
    CanonResult CR = canonicalizeTest(T);
    CanonResult CR2 = canonicalizeTest(CR.Canon);
    EXPECT_EQ(CR.Text, CR2.Text) << What;
    EXPECT_EQ(CR.Key, CR2.Key) << What;
    EXPECT_EQ(CR.Text, printLitmusC(CR.Canon)) << What;
    ++Checked;
  }
  EXPECT_GT(Checked, 100u);
}

// Random thread/location/register renamings -- including thread
// reorderings -- canonicalize to the identical text and key. This is
// exactly the equivalence corpus dedupe collapses.
TEST(CanonTest, RenameInvarianceBattery) {
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue;
    const LitmusTest &T = Tests.front();
    LitmusTest V = shuffledRename(T, Seed, /*PermuteThreads=*/true);
    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T) + "\nrenamed:\n" + printLitmusC(V);
    CanonResult CT = canonicalizeTest(T);
    CanonResult CV = canonicalizeTest(V);
    EXPECT_EQ(CT.Text, CV.Text) << What;
    EXPECT_EQ(CT.Key, CV.Key) << What;
    ++Checked;
  }
  EXPECT_GT(Checked, 100u);
}

// The classic families must also be rename-invariant...
TEST(CanonTest, ClassicsRenameInvariance) {
  for (const std::string &Name : classicNames()) {
    LitmusTest T = classicTest(Name);
    LitmusTest V = shuffledRename(T, 7, /*PermuteThreads=*/true);
    CanonResult CT = canonicalizeTest(T);
    CanonResult CV = canonicalizeTest(V);
    EXPECT_EQ(CT.Text, CV.Text) << Name;
    EXPECT_EQ(CT.Key, CV.Key) << Name;
  }
}

// ...while remaining pairwise distinct: MP and SB are not the same test,
// and neither are MP and MP+rel+acq (orders are part of the identity).
TEST(CanonTest, ClassicsPairwiseDistinct) {
  std::vector<std::string> Names = classicNames();
  std::vector<CanonResult> Canon;
  for (const std::string &Name : Names)
    Canon.push_back(canonicalizeTest(classicTest(Name)));
  for (size_t I = 0; I != Canon.size(); ++I)
    for (size_t J = I + 1; J != Canon.size(); ++J) {
      EXPECT_NE(Canon[I].Text, Canon[J].Text) << Names[I] << " vs " << Names[J];
      EXPECT_FALSE(Canon[I].Key == Canon[J].Key)
          << Names[I] << " vs " << Names[J];
    }
}

// The stored renaming round-trips outcomes: simulating the representative
// and translating through composeRenaming is byte-identical to simulating
// the renamed duplicate directly. This is the exact substitution corpus
// dedupe performs instead of executing the duplicate.
TEST(CanonTest, OutcomeRoundTripBattery) {
  unsigned Compared = 0;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue;
    const LitmusTest &T = Tests.front();
    LitmusTest V = shuffledRename(T, Seed, /*PermuteThreads=*/true);
    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T) + "\nrenamed:\n" + printLitmusC(V);
    CanonResult CT = canonicalizeTest(T);
    CanonResult CV = canonicalizeTest(V);
    ASSERT_EQ(CT.Text, CV.Text) << What;
    CanonRenaming Ren = composeRenaming(CT, CV);

    SimOptions Opts;
    SimResult RT = simulateC(T, "rc11", Opts);
    SimResult RV = simulateC(V, "rc11", Opts);
    ASSERT_TRUE(RT.ok()) << What;
    ASSERT_TRUE(RV.ok()) << What;
    EXPECT_EQ(outcomeSetToString(Ren.renameOutcomeSet(RT.Allowed)),
              outcomeSetToString(RV.Allowed))
        << What;
    ++Compared;
  }
  EXPECT_GT(Compared, 25u);
}

// Location types are part of the identity: stores truncate to the
// declared width, so an atomic_char test and an atomic_int test with the
// same shape can observe different values and must not share a canonical
// class. (The printer used to collapse every atomic type to atomic_int,
// which would have conflated them.)
TEST(CanonTest, LocationTypeDistinguishesIdentity) {
  LitmusTest Base = classicTest("MP");
  LitmusTest Narrow = Base;
  Narrow.Locations[0].Type = IntType{8, true};
  LitmusTest Unsigned = Base;
  Unsigned.Locations[0].Type = IntType{8, false};

  CanonResult CB = canonicalizeTest(Base);
  CanonResult CN = canonicalizeTest(Narrow);
  CanonResult CU = canonicalizeTest(Unsigned);
  EXPECT_NE(CB.Text, CN.Text);
  EXPECT_NE(CB.Text, CU.Text);
  EXPECT_NE(CN.Text, CU.Text);
  EXPECT_FALSE(CB.Key == CN.Key);
  EXPECT_FALSE(CB.Key == CU.Key);
  EXPECT_FALSE(CN.Key == CU.Key);

  // And the typed declaration survives the corpus interchange format:
  // print -> parse -> canonicalize lands in the same class as the AST.
  ErrorOr<LitmusTest> Reparsed = parseLitmusC(printLitmusC(Narrow));
  ASSERT_TRUE(Reparsed.hasValue()) << Reparsed.error();
  EXPECT_EQ(canonicalizeTest(*Reparsed).Text, CN.Text);
}

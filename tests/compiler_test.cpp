//===--- compiler_test.cpp - Mini-compiler tests --------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "compiler/Passes.h"
#include "core/LitmusToC.h"
#include "diy/Classics.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// Mnemonics emitted for thread \p T under \p P.
std::vector<std::string> mnemonics(const LitmusTest &Test, const Profile &P,
                                   unsigned T = 0) {
  ErrorOr<CompileOutput> Out = compileLitmus(Test, P);
  EXPECT_TRUE(Out.hasValue()) << (Out.hasValue() ? "" : Out.error());
  std::vector<std::string> M;
  for (const AsmInst &I : Out->Asm.Threads[T].Code)
    M.push_back(I.Mnemonic);
  return M;
}

bool contains(const std::vector<std::string> &Haystack,
              const std::string &Needle) {
  return std::find(Haystack.begin(), Haystack.end(), Needle) !=
         Haystack.end();
}

LitmusTest acquireLoadTest() {
  auto T = parseLitmusC(R"(C acq
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_acquire);
  *x = r0;
}
exists (x=0)
)");
  return *T;
}

LitmusTest releaseStoreTest() {
  auto T = parseLitmusC(R"(C rel
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_release);
}
exists (x=1)
)");
  return *T;
}

LitmusTest seqCstStoreTest() {
  auto T = parseLitmusC(R"(C scst
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
}
exists (x=1)
)");
  return *T;
}

LitmusTest fetchAddDeadTest() {
  auto T = parseLitmusC(R"(C fad
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
)");
  return *T;
}

} // namespace

TEST(ProfileTest, Names) {
  EXPECT_EQ(
      Profile::current(CompilerKind::Llvm, OptLevel::O3, Arch::AArch64)
          .name(),
      "llvm-O3-AArch64");
  EXPECT_EQ(Profile::current(CompilerKind::Gcc, OptLevel::Og, Arch::Mips)
                .name(),
            "gcc-Og-MIPS");
}

TEST(ProfileTest, NamedProfilesCarryBugs) {
  EXPECT_TRUE(Profile::llvm11(OptLevel::O2, Arch::AArch64).Bugs.any());
  EXPECT_FALSE(Profile::llvm11(OptLevel::O2, Arch::X86_64).Bugs.any());
  EXPECT_TRUE(Profile::llvmOldLse(OptLevel::O1).Bugs.StaddNoRet);
  EXPECT_FALSE(
      Profile::current(CompilerKind::Gcc, OptLevel::O2, Arch::Ppc)
          .Bugs.any());
}

TEST(MappingTest, AArch64AcquireLoad) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  EXPECT_TRUE(contains(mnemonics(acquireLoadTest(), P), "ldar"));
  P.Features.Rcpc = true; // Armv8.3: acquire loads become LDAPR
  std::vector<std::string> M = mnemonics(acquireLoadTest(), P);
  EXPECT_TRUE(contains(M, "ldapr"));
  EXPECT_FALSE(contains(M, "ldar"));
}

TEST(MappingTest, AArch64ReleaseAndSeqCstStores) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  EXPECT_TRUE(contains(mnemonics(releaseStoreTest(), P), "stlr"));
  EXPECT_TRUE(contains(mnemonics(seqCstStoreTest(), P), "stlr"));
}

TEST(MappingTest, AArch64RmwLlscVersusLse) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  std::vector<std::string> Llsc = mnemonics(fetchAddDeadTest(), P);
  EXPECT_TRUE(contains(Llsc, "ldxr"));
  EXPECT_TRUE(contains(Llsc, "stxr"));
  P.Features.Lse = true;
  std::vector<std::string> Lse = mnemonics(fetchAddDeadTest(), P);
  EXPECT_TRUE(contains(Lse, "ldadd"));
  EXPECT_FALSE(contains(Lse, "ldxr"));
}

TEST(MappingTest, AArch64BugModels) {
  Profile P = Profile::llvmOldLse(OptLevel::O2);
  // StaddNoRet: dead fetch_add result -> ST-form.
  std::vector<std::string> M = mnemonics(fetchAddDeadTest(), P);
  EXPECT_TRUE(contains(M, "stadd"));
  // XchgNoRet applies to exchanges with discarded results.
  Profile X = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  X.Features.Lse = true;
  X.Bugs.XchgNoRet = true;
  std::vector<std::string> M2 = mnemonics(paperFig1(), X, 1);
  EXPECT_TRUE(contains(M2, "swpl"));
}

TEST(MappingTest, Armv7DmbBrackets) {
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2,
                               Arch::Armv7);
  std::vector<std::string> M = mnemonics(acquireLoadTest(), P);
  EXPECT_TRUE(contains(M, "ldr"));
  EXPECT_TRUE(contains(M, "dmb"));
  EXPECT_TRUE(contains(mnemonics(fetchAddDeadTest(), P), "ldrex"));
}

TEST(MappingTest, X86SeqCstStoreDiffersByCompiler) {
  // A real-world LLVM/GCC difference the campaign exercises.
  Profile Llvm = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                  Arch::X86_64);
  Profile Gcc = Profile::current(CompilerKind::Gcc, OptLevel::O2,
                                 Arch::X86_64);
  EXPECT_TRUE(contains(mnemonics(seqCstStoreTest(), Llvm), "xchg"));
  EXPECT_TRUE(contains(mnemonics(seqCstStoreTest(), Gcc), "mfence"));
}

TEST(MappingTest, X86DeadRmwUsesLockAdd) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::X86_64);
  EXPECT_TRUE(contains(mnemonics(fetchAddDeadTest(), P), "lock.add"));
}

TEST(MappingTest, RiscVFenceStrengthByCompiler) {
  Profile Llvm = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                  Arch::RiscV);
  Profile Gcc = Profile::current(CompilerKind::Gcc, OptLevel::O2,
                                 Arch::RiscV);
  ErrorOr<CompileOutput> L = compileLitmus(acquireLoadTest(), Llvm);
  ErrorOr<CompileOutput> G = compileLitmus(acquireLoadTest(), Gcc);
  ASSERT_TRUE(L.hasValue() && G.hasValue());
  auto FenceKind = [](const CompileOutput &O) -> std::string {
    for (const AsmInst &I : O.Asm.Threads[0].Code)
      if (I.Mnemonic == "fence")
        return I.Ops[0].Sym + "," + I.Ops[1].Sym;
    return "";
  };
  EXPECT_EQ(FenceKind(*L), "r,rw");
  EXPECT_EQ(FenceKind(*G), "rw,rw"); // conservative
}

TEST(MappingTest, RiscVAmoAnnotations) {
  auto T = parseLitmusC(R"(C amo
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_acq_rel);
  *x = r0;
}
exists (x=1)
)");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::RiscV);
  EXPECT_TRUE(contains(mnemonics(*T, P), "amoadd.w.aqrl"));
}

TEST(MappingTest, PpcSyncLayering) {
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2, Arch::Ppc);
  std::vector<std::string> Acq = mnemonics(acquireLoadTest(), P);
  EXPECT_TRUE(contains(Acq, "lwsync"));
  std::vector<std::string> Sc = mnemonics(seqCstStoreTest(), P);
  EXPECT_TRUE(contains(Sc, "sync"));
  std::vector<std::string> Rmw = mnemonics(fetchAddDeadTest(), P);
  EXPECT_TRUE(contains(Rmw, "lwarx"));
  EXPECT_TRUE(contains(Rmw, "stwcx."));
}

TEST(MappingTest, MipsDelaySlots) {
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2, Arch::Mips);
  std::vector<std::string> M = mnemonics(fetchAddDeadTest(), P);
  EXPECT_TRUE(contains(M, "ll"));
  EXPECT_TRUE(contains(M, "sc"));
  EXPECT_TRUE(contains(M, "nop")); // unfilled delay slot (GCC PR 110573)
  Profile Opt = P;
  Opt.Bugs.MipsFillAtomicDelaySlots = true;
  std::vector<std::string> M2 = mnemonics(fetchAddDeadTest(), Opt);
  EXPECT_LT(M2.size(), M.size());
}

TEST(MappingTest, RelaxedFencesCompileToNothing) {
  // The Fig. 7 mechanism: a relaxed fence leaves no instruction.
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  std::vector<std::string> M = mnemonics(paperFig7(), P);
  EXPECT_FALSE(contains(M, "dmb"));
}

TEST(Mapping128Test, WrongEndianFlipsRegisters) {
  auto T = parseLitmusC(R"(C w128
{ __int128 *x = 0; }
void P0(atomic_int128* x) {
  atomic_store_explicit(x, 2:1, memory_order_relaxed);
}
exists (x=2:1)
)");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  P.Features.Lse2 = true;
  ErrorOr<CompileOutput> Ok = compileLitmus(*T, P);
  ASSERT_TRUE(Ok.hasValue()) << Ok.error();
  P.Bugs.Stp128WrongEndian = true;
  ErrorOr<CompileOutput> Bad = compileLitmus(*T, P);
  ASSERT_TRUE(Bad.hasValue()) << Bad.error();
  auto StpOperands = [](const CompileOutput &O) {
    for (const AsmInst &I : O.Asm.Threads[0].Code)
      if (I.Mnemonic == "stp")
        return std::make_pair(I.Ops[0].Reg, I.Ops[1].Reg);
    return std::make_pair(std::string(), std::string());
  };
  auto [OkLo, OkHi] = StpOperands(*Ok);
  auto [BadLo, BadHi] = StpOperands(*Bad);
  EXPECT_EQ(OkLo, BadHi);
  EXPECT_EQ(OkHi, BadLo);
}

TEST(Mapping128Test, NonAArch64Rejects128) {
  auto T = parseLitmusC(R"(C w128b
{ __int128 *x = 0; }
void P0(atomic_int128* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (x=1)
)");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::X86_64);
  EXPECT_FALSE(compileLitmus(*T, P).hasValue());
}

TEST(PassesTest, DeadLocalMarking) {
  auto T = parseLitmusC(R"(C dl
{ *x = 0; *y = 0; }
void P0(int* x, int* y) {
  int r0 = *x;
  int r1 = *x;
  *y = r1;
}
exists (y=1)
)");
  markDeadLocals(*T);
  EXPECT_TRUE(T->Threads[0].Body[0].DstUsedNowhere);  // r0 unused
  EXPECT_FALSE(T->Threads[0].Body[1].DstUsedNowhere); // r1 stored
}

TEST(PassesTest, EraseDeadPlainLoads) {
  LitmusTest T = paperFig9();
  markDeadLocals(T);
  eraseDeadPlainLoads(T);
  for (const Thread &Th : T.Threads)
    EXPECT_EQ(Th.Body.size(), 1u); // only the store remains
}

TEST(PassesTest, StoreDiamondMerge) {
  LitmusTest T = classicTest("LB+ctrls");
  markDeadLocals(T);
  mergeStoreDiamonds(T, /*KeepDataDep=*/false);
  for (const Thread &Th : T.Threads)
    for (const Stmt &S : Th.Body)
      EXPECT_NE(S.K, Stmt::Kind::If) << "diamond not merged";
}

TEST(PassesTest, StoreDiamondMergeKeepsDataDep) {
  LitmusTest T = classicTest("LB+ctrls");
  markDeadLocals(T);
  mergeStoreDiamonds(T, /*KeepDataDep=*/true);
  bool SawDepValue = false;
  for (const Thread &Th : T.Threads)
    for (const Stmt &S : Th.Body)
      if (S.K == Stmt::Kind::Store && S.Val.K == Expr::Kind::Add)
        SawDepValue = true;
  EXPECT_TRUE(SawDepValue);
}

TEST(PassesTest, MiddleEndOnlyFiresAtO1Plus) {
  LitmusTest T = paperFig9();
  Profile O0 = Profile::current(CompilerKind::Llvm, OptLevel::O0,
                                Arch::AArch64);
  std::vector<std::string> Notes = runMiddleEnd(T, O0);
  EXPECT_TRUE(Notes.empty());
  EXPECT_EQ(T.Threads[0].Body.size(), 2u); // nothing deleted
}

TEST(CompileOutputTest, KeyMapAndDeletedLocals) {
  // MP's registers survive an -O0 build and map to machine registers.
  LitmusTest T = classicTest("MP");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O0,
                               Arch::AArch64);
  ErrorOr<CompileOutput> Out = compileLitmus(T, P);
  ASSERT_TRUE(Out.hasValue()) << Out.error();
  unsigned RegMappings = 0;
  for (const auto &[From, To] : Out->KeyMap)
    if (From.find(':') != std::string::npos)
      ++RegMappings;
  EXPECT_EQ(RegMappings, 2u);
  EXPECT_TRUE(Out->DeletedLocals.empty());
  // At -O2 the unused atomic-load results lose their registers.
  Profile P2 = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                Arch::AArch64);
  ErrorOr<CompileOutput> Out2 = compileLitmus(classicTest("LB"), P2);
  ASSERT_TRUE(Out2.hasValue());
  EXPECT_EQ(Out2->DeletedLocals.size(), 2u);
}

TEST(CompileOutputTest, SyntheticLocationsDeclared) {
  LitmusTest T = classicTest("MP");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  ErrorOr<CompileOutput> Out = compileLitmus(T, P);
  ASSERT_TRUE(Out.hasValue());
  bool Got = false, Stack = false;
  for (const SimLoc &L : Out->Asm.Locations) {
    if (L.Name.rfind("got.", 0) == 0) {
      Got = true;
      EXPECT_FALSE(L.InitAddrOf.empty());
    }
    if (L.Name.rfind("stack.", 0) == 0)
      Stack = true;
  }
  EXPECT_TRUE(Got);
  EXPECT_TRUE(Stack);
}

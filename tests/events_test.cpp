//===--- events_test.cpp - Execution-graph tests --------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "events/Dot.h"
#include "events/Execution.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// Two threads over one location: init, W(T0)=1, R(T1)=1, plus a fence.
Execution smallExecution() {
  Execution Ex;
  auto Add = [&](EventKind K, unsigned Thread, const char *Loc,
                 uint64_t V) {
    Event E;
    E.Id = Ex.Events.size();
    E.Kind = K;
    E.Thread = Thread;
    E.Loc = Loc;
    E.Val = Value(V);
    Ex.Events.push_back(E);
    return E.Id;
  };
  unsigned I = Add(EventKind::Write, Event::InitThread, "x", 0);
  unsigned W = Add(EventKind::Write, 0, "x", 1);
  unsigned R = Add(EventKind::Read, 1, "x", 1);
  unsigned F = Add(EventKind::Fence, 1, "", 0);
  Ex.Events[F].Tags = {"DMB.ISH"};
  Ex.resizeRelations();
  Ex.Po.set(I, W);
  Ex.Po.set(I, R);
  Ex.Po.set(I, F);
  Ex.Po.set(R, F);
  Ex.Rf.set(W, R);
  Ex.Co.set(I, W);
  return Ex;
}

} // namespace

TEST(EventTest, Predicates) {
  Event E;
  E.Kind = EventKind::Read;
  EXPECT_TRUE(E.isRead());
  EXPECT_TRUE(E.isMemAccess());
  EXPECT_FALSE(E.isWrite());
  E.Kind = EventKind::Fence;
  EXPECT_TRUE(E.isFence());
  EXPECT_FALSE(E.isMemAccess());
  EXPECT_TRUE(E.isInit());
  E.Thread = 0;
  EXPECT_FALSE(E.isInit());
}

TEST(EventTest, ToStringNotation) {
  Event E;
  E.Id = 0;
  E.Kind = EventKind::Write;
  E.Loc = "x";
  E.Val = Value(1);
  E.Tags = {"RLX"};
  EXPECT_EQ(E.toString(), "a: W(RLX)[x]=1");
}

TEST(ExecutionTest, DerivedRelations) {
  Execution Ex = smallExecution();
  // fr: the read reads W (co-max), so no from-read edge to a later write.
  EXPECT_TRUE(Ex.fr().empty());
  // loc: W, R, and init all on x; fence excluded.
  Relation Loc = Ex.loc();
  EXPECT_TRUE(Loc.test(1, 2));
  EXPECT_TRUE(Loc.test(0, 1));
  EXPECT_FALSE(Loc.test(1, 3));
  // poLoc subset of po.
  EXPECT_TRUE((Ex.poLoc() - Ex.Po).empty());
}

TEST(ExecutionTest, FrDerivation) {
  Execution Ex = smallExecution();
  // Re-point the read at the initial write: fr(R, W) appears.
  Ex.Rf = Relation(Ex.size());
  Ex.Rf.set(0, 2);
  Relation Fr = Ex.fr();
  EXPECT_TRUE(Fr.test(2, 1));
  EXPECT_EQ(Fr.count(), 1u);
}

TEST(ExecutionTest, ExtIntPartitionDistinctEvents) {
  Execution Ex = smallExecution();
  Relation E = Ex.ext(), I = Ex.internal();
  EXPECT_TRUE((E & I).empty());
  // R (thread 1) and F (thread 1) are internal; W (thread 0) vs R ext.
  EXPECT_TRUE(I.test(2, 3));
  EXPECT_TRUE(E.test(1, 2));
  // Init writes are external to everything.
  EXPECT_TRUE(E.test(0, 1));
}

TEST(ExecutionTest, KindAndTagSets) {
  Execution Ex = smallExecution();
  EXPECT_EQ(Ex.kindSet(EventKind::Write).count(), 2u);
  EXPECT_EQ(Ex.kindSet(EventKind::Read).count(), 1u);
  EXPECT_EQ(Ex.kindSet(EventKind::Fence).count(), 1u);
  EXPECT_EQ(Ex.tagSet("DMB.ISH").count(), 1u);
  EXPECT_TRUE(Ex.tagSet("NOSUCH").empty());
  EXPECT_EQ(Ex.initWrites().count(), 1u);
  EXPECT_EQ(Ex.universe().count(), 4u);
}

TEST(ExecutionTest, FinalMemoryIsCoMaximal) {
  Execution Ex = smallExecution();
  std::map<std::string, Value> Mem = Ex.finalMemory();
  ASSERT_TRUE(Mem.count("x"));
  EXPECT_EQ(Mem["x"], Value(1));
}

TEST(DotTest, RendersAllEdges) {
  Execution Ex = smallExecution();
  std::string Dot = executionToDot(Ex, "small");
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("rf"), std::string::npos);
  EXPECT_NE(Dot.find("po"), std::string::npos);
  EXPECT_NE(Dot.find("style=dotted"), std::string::npos); // init write
  // Transitive po edges are elided: init->F has po via R.
  EXPECT_EQ(Dot.find("e0 -> e3 [label=\"po\""), std::string::npos);
}

TEST(ExecutionTest, ToStringListsRelations) {
  Execution Ex = smallExecution();
  std::string S = Ex.toString();
  EXPECT_NE(S.find("po:"), std::string::npos);
  EXPECT_NE(S.find("rf:"), std::string::npos);
  EXPECT_NE(S.find("(1,2)"), std::string::npos);
}

//===--- solve_test.cpp - Constraint-solver backend tests -----------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the watched-literal nogood database and differential
/// tests of the solve backend against the sweep: same outcomes, flags,
/// deterministic counters and collected executions on everything the
/// sweep can finish -- plus the crossover case the sweep cannot.
///
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "events/Dot.h"
#include "litmus/Parser.h"
#include "sim/Backend.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"
#include "solve/Clauses.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace telechat;
using namespace telechat::solve;

//===----------------------------------------------------------------------===//
// NogoodDB
//===----------------------------------------------------------------------===//

TEST(NogoodDBTest, PersistentRemovalSurvivesBacktrack) {
  NogoodDB DB;
  DB.init({2, 2});
  DB.pushLevel();
  EXPECT_TRUE(DB.addNogood({{0, 1}}));
  EXPECT_FALSE(DB.candActive(0, 1));
  DB.popLevel();
  // Size-1 nogoods are globally valid for the combo: the removal must
  // not be resurrected by backtracking.
  EXPECT_FALSE(DB.candActive(0, 1));
  EXPECT_TRUE(DB.candActive(0, 0));
  EXPECT_EQ(DB.added(), 1u);
  EXPECT_EQ(DB.propagations(), 1u);
}

TEST(NogoodDBTest, UnitPropagationRemovesCandidate) {
  NogoodDB DB;
  DB.init({2, 2});
  EXPECT_TRUE(DB.addNogood({{0, 0}, {1, 1}}));
  DB.pushLevel();
  EXPECT_TRUE(DB.assign(0, 0));
  // With (0,0) matched the nogood is unit on (1,1): that candidate is
  // now forbidden.
  EXPECT_FALSE(DB.candActive(1, 1));
  EXPECT_EQ(DB.propagations(), 1u);
  DB.popLevel();
  EXPECT_TRUE(DB.candActive(1, 1)); // Trailed removal undone.
}

TEST(NogoodDBTest, ConflictOnFullMatch) {
  NogoodDB DB;
  DB.init({2, 2});
  DB.pushLevel();
  EXPECT_TRUE(DB.assign(1, 1));
  // Learned after the assignment, so no propagation happened at add
  // time -- the next matching assignment must conflict instead.
  EXPECT_TRUE(DB.addNogood({{0, 0}, {1, 1}}));
  DB.pushLevel();
  EXPECT_FALSE(DB.assign(0, 0));
}

TEST(NogoodDBTest, DomainWipeIsConflict) {
  NogoodDB DB;
  DB.init({1, 2});
  EXPECT_TRUE(DB.addNogood({{0, 0}, {1, 0}}));
  DB.pushLevel();
  // Unit removal of var 0's only candidate wipes an unassigned
  // domain: no completion exists, so the assignment must fail.
  EXPECT_FALSE(DB.assign(1, 0));
}

TEST(NogoodDBTest, DuplicateNogoodsDropped) {
  NogoodDB DB;
  DB.init({2, 2});
  EXPECT_TRUE(DB.addNogood({{0, 0}, {1, 1}}));
  EXPECT_TRUE(DB.addNogood({{1, 1}, {0, 0}})); // Same set, reordered.
  EXPECT_EQ(DB.added(), 1u);
}

TEST(NogoodDBTest, WatchMigratesThenGoesUnit) {
  NogoodDB DB;
  DB.init({2, 2, 2});
  EXPECT_TRUE(DB.addNogood({{0, 0}, {1, 0}, {2, 0}}));
  DB.pushLevel();
  EXPECT_TRUE(DB.assign(0, 0)); // Watch moves to (2,0); nothing removed.
  EXPECT_TRUE(DB.candActive(2, 0));
  DB.pushLevel();
  EXPECT_TRUE(DB.assign(1, 0)); // Now unit: (2,0) forbidden.
  EXPECT_FALSE(DB.candActive(2, 0));
  DB.popLevel();
  EXPECT_TRUE(DB.candActive(2, 0));
}

//===----------------------------------------------------------------------===//
// Solve backend vs sweep
//===----------------------------------------------------------------------===//

namespace {

/// Canonical rendering of a result's collected executions; the
/// byte-identity contract covers these, not just the outcome set.
std::string executionsToString(const SimResult &R) {
  std::string Out;
  for (const Execution &Ex : R.Executions)
    Out += executionToDot(Ex, "x");
  return Out;
}

void expectBackendsAgree(const LitmusTest &T, SimOptions Base) {
  Base.CollectExecutions = true;
  SimOptions SweepO = Base, SolveO = Base;
  SweepO.Backend = SimBackendKind::Sweep;
  SolveO.Backend = SimBackendKind::Solve;
  SimResult A = simulateC(T, "rc11", SweepO);
  SimResult B = simulateC(T, "rc11", SolveO);
  ASSERT_TRUE(A.ok()) << T.Name << ": " << A.Error;
  ASSERT_TRUE(B.ok()) << T.Name << ": " << B.Error;
  EXPECT_EQ(A.Stats.BackendUsed, uint8_t(SimBackendKind::Sweep));
  EXPECT_EQ(B.Stats.BackendUsed, uint8_t(SimBackendKind::Solve));
  EXPECT_EQ(outcomeSetToString(A.Allowed), outcomeSetToString(B.Allowed))
      << T.Name;
  EXPECT_EQ(A.Flags, B.Flags) << T.Name;
  EXPECT_EQ(A.Stats.PathCombos, B.Stats.PathCombos) << T.Name;
  EXPECT_EQ(A.Stats.ValueConsistent, B.Stats.ValueConsistent) << T.Name;
  EXPECT_EQ(A.Stats.CoCandidates, B.Stats.CoCandidates) << T.Name;
  EXPECT_EQ(A.Stats.AllowedExecutions, B.Stats.AllowedExecutions)
      << T.Name;
  EXPECT_EQ(executionsToString(A), executionsToString(B)) << T.Name;
}

/// The crossover workload: a two-path observer whose else-path guards
/// \p Junk junk loads behind a constraint (`a - b` zero) that no pair
/// of candidate writes satisfies. The sweep pays one budget step per
/// swept index of the dead path (2^Junk and change); the solver
/// refutes the combo from the compiled pair check without a decision.
LitmusTest crossoverTest(unsigned Junk) {
  std::string Locs, P0Params, P1Params, Stores, Loads;
  for (unsigned I = 0; I != Junk; ++I) {
    std::string X = "x" + std::to_string(I);
    Locs += "*" + X + " = 0; ";
    P0Params += ", atomic_int* " + X;
    P1Params += ", atomic_int* " + X;
    Stores += "  atomic_store_explicit(" + X +
              ", 1, memory_order_relaxed);\n";
    Loads += "    int r" + std::to_string(I) + " = atomic_load_explicit(" +
             X + ", memory_order_relaxed);\n";
  }
  std::string Src = "C xover\n{ *y = 0; *z = 1; *w = 0; " + Locs +
                    "}\nvoid P0(atomic_int* y, atomic_int* z, atomic_int* w" +
                    P0Params +
                    ") {\n"
                    "  atomic_store_explicit(y, 5, memory_order_relaxed);\n"
                    "  atomic_store_explicit(z, 7, memory_order_relaxed);\n" +
                    Stores +
                    "}\nvoid P1(atomic_int* y, atomic_int* z, atomic_int* w" +
                    P1Params +
                    ") {\n"
                    "  int a = atomic_load_explicit(y, memory_order_relaxed);\n"
                    "  int b = atomic_load_explicit(z, memory_order_relaxed);\n"
                    "  if (a - b) {\n"
                    "    atomic_store_explicit(w, 1, memory_order_relaxed);\n"
                    "  } else {\n" +
                    Loads +
                    "  }\n}\nexists (P1:a=5 /\\ P1:b=7)\n";
  auto T = parseLitmusC(Src);
  EXPECT_TRUE(T.hasValue()) << T.error();
  return *T;
}

} // namespace

TEST(SolveBackendTest, ClassicsMatchSweep) {
  for (const char *Name :
       {"MP", "MP+rel+acq", "MP+fences", "SB", "LB", "2+2W", "S", "IRIW"})
    expectBackendsAgree(classicTest(Name), SimOptions());
}

TEST(SolveBackendTest, BranchyTestsMatchSweepAcrossModes) {
  auto T = parseLitmusC(R"(C branchy
{ *x = 0; *y = 0; *z = 0; }
void P0(atomic_int* x, atomic_int* y, atomic_int* z) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  if (r0 - r1) { atomic_store_explicit(z, 1, memory_order_relaxed); }
  if (r0) { atomic_store_explicit(z, 2, memory_order_relaxed); }
}
exists (P1:r0=1 /\ P1:r1=0)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  expectBackendsAgree(*T, SimOptions());
  SimOptions NoPrune;
  NoPrune.RfValuePruning = false; // Pure DFS: a tree-shaped sweep.
  expectBackendsAgree(*T, NoPrune);
  SimOptions CopyOnly;
  CopyOnly.RfTransformDomain = false;
  expectBackendsAgree(*T, CopyOnly);
}

TEST(SolveBackendTest, StoreOnlyProgramMatchesSweep) {
  auto T = parseLitmusC(R"(C storesonly
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
exists (x=2)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  expectBackendsAgree(*T, SimOptions()); // Zero decision variables.
}

TEST(SolveBackendTest, ParallelSolveIsJobsInvariant) {
  // Multiple path combos shard across workers; a completed run's
  // outcomes *and* solver counters must not depend on -j.
  auto T = parseLitmusC(R"(C combos
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  if (r0) { atomic_store_explicit(x, 2, memory_order_relaxed); }
}
void P1(atomic_int* x, atomic_int* y) {
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
  if (r1 - 1) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  int r2 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r1=2 /\ P1:r2=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions Seq, Par;
  Seq.Backend = Par.Backend = SimBackendKind::Solve;
  Seq.Jobs = 1;
  Par.Jobs = 4;
  SimResult A = simulateC(*T, "rc11", Seq);
  SimResult B = simulateC(*T, "rc11", Par);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(outcomeSetToString(A.Allowed), outcomeSetToString(B.Allowed));
  EXPECT_EQ(A.Flags, B.Flags);
  EXPECT_EQ(A.Stats.SolveDecisions, B.Stats.SolveDecisions);
  EXPECT_EQ(A.Stats.SolveConflicts, B.Stats.SolveConflicts);
  EXPECT_EQ(A.Stats.SolveClauses, B.Stats.SolveClauses);
}

TEST(SolveBackendTest, CompiledPairClausesPrune) {
  // `r0 - r1` roots in two reads, so the check compiles to binary
  // nogoods over the candidate writes' known values; two of the four
  // pairs violate the taken-path constraint.
  auto T = parseLitmusC(R"(C pair
{ *x = 0; *y = 0; *z = 0; }
void P0(atomic_int* x, atomic_int* y, atomic_int* z) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  if (r0 - r1) { atomic_store_explicit(z, 1, memory_order_relaxed); }
}
exists (P1:r0=0 /\ P1:r1=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions SolveO;
  SolveO.Backend = SimBackendKind::Solve;
  SimResult R = simulateC(*T, "rc11", SolveO);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_GT(R.Stats.SolveClauses, 0u);
  EXPECT_GT(R.Stats.SolvePropagations, 0u);
  // And pruning must not have cost correctness.
  expectBackendsAgree(*T, SimOptions());
}

TEST(SolveBackendTest, CrossoverSolveFinishesWhereSweepCannot) {
  LitmusTest T = crossoverTest(14);
  SimOptions Tight;
  Tight.MaxSteps = 20000; // < 2^16: the dead path alone exhausts it.
  SimOptions SweepO = Tight, SolveO = Tight;
  SweepO.Backend = SimBackendKind::Sweep;
  SolveO.Backend = SimBackendKind::Solve;
  SimResult SweepR = simulateC(T, "rc11", SweepO);
  SimResult SolveR = simulateC(T, "rc11", SolveO);
  ASSERT_TRUE(SolveR.ok()) << SolveR.Error;
  EXPECT_TRUE(SweepR.TimedOut);
  EXPECT_FALSE(SolveR.TimedOut);
  EXPECT_GT(SolveR.Stats.SolveConflicts, 0u); // Combo refuted at compile.
  // The solver's answer equals what the sweep says with a real budget.
  SimResult Full = simulateC(T, "rc11", SimOptions());
  ASSERT_TRUE(Full.ok()) << Full.Error;
  ASSERT_FALSE(Full.TimedOut);
  EXPECT_EQ(outcomeSetToString(Full.Allowed),
            outcomeSetToString(SolveR.Allowed));
  EXPECT_EQ(Full.Flags, SolveR.Flags);
}

TEST(SolveBackendTest, AutoResolvesByEstimatedSpace) {
  LitmusTest Small = classicTest("MP");
  SimProgram SmallP = lowerLitmusC(Small);
  EXPECT_LT(estimatedRfSpace(SmallP), kAutoSolveThreshold);
  EXPECT_EQ(&resolveBackend(SimBackendKind::Auto, SmallP),
            &sweepBackend());
  EXPECT_EQ(&resolveBackend(SimBackendKind::Sweep, SmallP),
            &sweepBackend());
  EXPECT_EQ(&resolveBackend(SimBackendKind::Solve, SmallP),
            &solveBackend());

  LitmusTest Big = crossoverTest(14);
  SimProgram BigP = lowerLitmusC(Big);
  EXPECT_GE(estimatedRfSpace(BigP), kAutoSolveThreshold);
  EXPECT_EQ(&resolveBackend(SimBackendKind::Auto, BigP), &solveBackend());

  // And the dispatch stamps what actually ran.
  SimOptions AutoO;
  AutoO.Backend = SimBackendKind::Auto;
  EXPECT_EQ(simulateC(Small, "rc11", AutoO).Stats.BackendUsed,
            uint8_t(SimBackendKind::Sweep));
}

TEST(SolveBackendTest, BackendNamesRoundTrip) {
  SimBackendKind K = SimBackendKind::Sweep;
  EXPECT_TRUE(backendFromName("solve", K));
  EXPECT_EQ(K, SimBackendKind::Solve);
  EXPECT_TRUE(backendFromName("auto", K));
  EXPECT_EQ(K, SimBackendKind::Auto);
  EXPECT_TRUE(backendFromName("sweep", K));
  EXPECT_EQ(K, SimBackendKind::Sweep);
  EXPECT_TRUE(backendFromName("explore", K));
  EXPECT_EQ(K, SimBackendKind::Explore);
  K = SimBackendKind::Sweep;
  EXPECT_FALSE(backendFromName("dpll", K));
  EXPECT_EQ(K, SimBackendKind::Sweep); // Untouched on failure.
  for (SimBackendKind Kind : {SimBackendKind::Sweep, SimBackendKind::Solve,
                              SimBackendKind::Auto,
                              SimBackendKind::Explore}) {
    SimBackendKind Back = SimBackendKind::Auto;
    EXPECT_TRUE(backendFromName(backendName(Kind), Back));
    EXPECT_EQ(Back, Kind);
  }
  EXPECT_STREQ(backendUsedName(uint8_t(SimBackendKind::Sweep)), "sweep");
  EXPECT_STREQ(backendUsedName(uint8_t(SimBackendKind::Solve)), "solve");
  EXPECT_STREQ(backendUsedName(uint8_t(SimBackendKind::Explore)),
               "explore");
}

//===--- fuzz_test.cpp - Metamorphic mutation tests -----------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the l2c fuzzing stage: every mutation must be
/// semantics-preserving, i.e. the mutant's outcome set over the original
/// observables equals the original's, and the full pipeline must reach
/// the same verdict on mutant and original (the metamorphic relation
/// Télétchat shares with C4/Orion, paper §II-B).
///
//===----------------------------------------------------------------------===//

#include "core/Fuzz.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "diy/Generator.h"
#include "litmus/Printer.h"
#include "sim/Backend.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// Outcomes of \p T under rc11, projected on \p Keys.
OutcomeSet projectedOutcomes(const LitmusTest &T,
                             const std::vector<std::string> &Keys) {
  SimResult R = simulateC(T, "rc11");
  EXPECT_TRUE(R.ok()) << R.Error;
  OutcomeSet Out;
  for (const Outcome &O : R.Allowed)
    Out.insert(O.projected(Keys));
  return Out;
}

struct FuzzCase {
  std::string Classic;
  uint64_t Seed;
};

class MetamorphicTest : public testing::TestWithParam<FuzzCase> {};

} // namespace

TEST(FuzzTest, DeterministicInSeed) {
  FuzzOptions O;
  O.Seed = 11;
  LitmusTest A = mutateTest(classicTest("MP"), O);
  LitmusTest B = mutateTest(classicTest("MP"), O);
  EXPECT_EQ(printLitmusC(A), printLitmusC(B));
}

TEST(FuzzTest, MutantsStayValid) {
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    FuzzOptions O;
    O.Seed = Seed;
    O.Rounds = 4;
    LitmusTest M = mutateTest(classicTest("MP+fences"), O);
    EXPECT_TRUE(M.validate().empty())
        << "seed " << Seed << ": " << M.validate() << "\n"
        << printLitmusC(M);
  }
}

TEST(FuzzTest, MutantsDiffer) {
  // Enough rounds should actually change the program.
  FuzzOptions O;
  O.Seed = 3;
  O.Rounds = 5;
  LitmusTest M = mutateTest(classicTest("MP"), O);
  EXPECT_NE(printLitmusC(M), printLitmusC(classicTest("MP")));
}

TEST_P(MetamorphicTest, OutcomesPreservedOverOriginalObservables) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  std::vector<std::string> Keys;
  Original.Final.P.collectKeys(Keys);

  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  // Key caveat: register renaming rewrites the predicate, so project the
  // mutant on *its* keys and compare values positionally via the shared
  // location keys plus renamed register keys.
  std::vector<std::string> MutantKeys;
  Mutant.Final.P.collectKeys(MutantKeys);
  ASSERT_EQ(Keys.size(), MutantKeys.size());

  OutcomeSet A = projectedOutcomes(Original, Keys);
  OutcomeSet BRaw = projectedOutcomes(Mutant, MutantKeys);
  // Rename mutant keys back to the original vocabulary.
  std::vector<std::pair<std::string, std::string>> Back;
  for (size_t I = 0; I != Keys.size(); ++I)
    Back.emplace_back(MutantKeys[I], Keys[I]);
  OutcomeSet B;
  for (const Outcome &Out : BRaw)
    B.insert(Out.renamed(Back));
  EXPECT_EQ(A, B) << C.Classic << " seed " << C.Seed << "\n"
                  << printLitmusC(Mutant);
}

TEST_P(MetamorphicTest, PipelineVerdictAgrees) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TelechatResult A = runTelechat(Original, P);
  TelechatResult B = runTelechat(Mutant, P);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(A.isBug(), B.isBug())
      << C.Classic << " seed " << C.Seed << "\n"
      << printLitmusC(Mutant);
}

TEST(FuzzTest, GenerativeDifferentialBattery) {
  // 200 seeds of diy generation at a cycle-length cap that favours
  // arithmetic-carrying Data/Ctrl edges (Data stores `v + (r^r)`, so
  // under the symbolic-transform domain the stored value stays tracked
  // where the copy-chain-only domain sees Top). For every generated
  // test the outcome set must be byte-identical with RfValuePruning on
  // vs off, with the transform domain degraded to copy-chains, and at
  // -j1 vs -j4 -- and the transform domain must prune strictly more
  // than the copy-chain baseline on at least one seed.
  unsigned Compared = 0, XformWins = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue; // attempt budget exhausted: nothing to compare
    const LitmusTest &T = Tests.front();

    SimOptions On;
    SimOptions CopyOnly;
    CopyOnly.RfTransformDomain = false;
    SimOptions Off;
    Off.RfValuePruning = false;
    SimOptions Par;
    Par.Jobs = 4;

    SimResult ROn = simulateC(T, "rc11", On);
    SimResult RCopy = simulateC(T, "rc11", CopyOnly);
    SimResult ROff = simulateC(T, "rc11", Off);
    SimResult RPar = simulateC(T, "rc11", Par);
    ASSERT_TRUE(ROn.ok()) << "seed " << Seed << ": " << ROn.Error;
    ASSERT_FALSE(ROff.TimedOut) << "seed " << Seed;
    ++Compared;

    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T);
    // Byte-equality of the rendered outcome sets, not just set
    // equality: the string is what campaign JSONs and journals carry.
    std::string Expect = outcomeSetToString(ROff.Allowed);
    EXPECT_EQ(outcomeSetToString(ROn.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RCopy.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RPar.Allowed), Expect) << What;
    EXPECT_EQ(ROn.Flags, ROff.Flags) << What;
    // -j4 must also agree on every deterministic counter.
    EXPECT_EQ(ROn.Stats.RfCandidates, RPar.Stats.RfCandidates) << What;
    EXPECT_EQ(ROn.Stats.RfSourcesPruned, RPar.Stats.RfSourcesPruned)
        << What;
    EXPECT_EQ(ROn.Stats.RfPruned, RPar.Stats.RfPruned) << What;
    // The copy attribution reproduces the copy-chain-only baseline; the
    // transform domain never prunes less.
    EXPECT_EQ(ROn.Stats.RfSourcesPrunedCopy,
              RCopy.Stats.RfSourcesPruned)
        << What;
    EXPECT_GE(ROn.Stats.RfSourcesPruned, RCopy.Stats.RfSourcesPruned)
        << What;
    if (ROn.Stats.RfSourcesPruned > RCopy.Stats.RfSourcesPruned)
      ++XformWins;
  }
  // The generator's attempt budget drops some seeds, but the battery
  // must remain a battery -- and the transform domain must have beaten
  // the copy-chain baseline somewhere in it.
  EXPECT_GT(Compared, 100u);
  EXPECT_GT(XformWins, 0u) << "transform domain never out-pruned the "
                              "copy-chain baseline across the battery";
}

TEST(FuzzTest, BackendDifferentialBattery) {
  // The same 200-seed generative stream, pitted across backends: for
  // every generated test the sweep, the solver (at -j1 and -j4) and
  // Auto must render byte-identical outcome sets, identical flags and
  // identical deterministic counters -- the backend only changes how
  // the candidate space is covered, never what comes out of it. The
  // solver's own counters must in turn be Jobs-invariant.
  unsigned Compared = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue; // attempt budget exhausted: nothing to compare
    const LitmusTest &T = Tests.front();

    SimOptions SweepO;
    SweepO.Backend = SimBackendKind::Sweep;
    SimOptions SolveO;
    SolveO.Backend = SimBackendKind::Solve;
    SolveO.Jobs = 1;
    SimOptions SolvePar = SolveO;
    SolvePar.Jobs = 4;
    SimOptions AutoO;
    AutoO.Backend = SimBackendKind::Auto;

    SimResult RSweep = simulateC(T, "rc11", SweepO);
    SimResult RSolve = simulateC(T, "rc11", SolveO);
    SimResult RPar = simulateC(T, "rc11", SolvePar);
    SimResult RAuto = simulateC(T, "rc11", AutoO);
    ASSERT_TRUE(RSweep.ok()) << "seed " << Seed << ": " << RSweep.Error;
    ASSERT_TRUE(RSolve.ok()) << "seed " << Seed << ": " << RSolve.Error;
    ASSERT_FALSE(RSweep.TimedOut) << "seed " << Seed;
    ASSERT_FALSE(RSolve.TimedOut) << "seed " << Seed;
    ++Compared;

    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T);
    std::string Expect = outcomeSetToString(RSweep.Allowed);
    EXPECT_EQ(outcomeSetToString(RSolve.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RPar.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RAuto.Allowed), Expect) << What;
    EXPECT_EQ(RSolve.Flags, RSweep.Flags) << What;
    EXPECT_EQ(RAuto.Flags, RSweep.Flags) << What;
    // The engines share the per-combo pipeline downstream of rf
    // selection, so the post-fixpoint counters agree exactly.
    EXPECT_EQ(RSolve.Stats.PathCombos, RSweep.Stats.PathCombos) << What;
    EXPECT_EQ(RSolve.Stats.ValueConsistent, RSweep.Stats.ValueConsistent)
        << What;
    EXPECT_EQ(RSolve.Stats.CoCandidates, RSweep.Stats.CoCandidates)
        << What;
    EXPECT_EQ(RSolve.Stats.AllowedExecutions,
              RSweep.Stats.AllowedExecutions)
        << What;
    EXPECT_EQ(RSolve.Stats.BackendUsed, uint8_t(SimBackendKind::Solve))
        << What;
    EXPECT_EQ(RSweep.Stats.BackendUsed, uint8_t(SimBackendKind::Sweep))
        << What;
    // -j must not change what the solver decided, only who decided it.
    EXPECT_EQ(RSolve.Stats.SolveDecisions, RPar.Stats.SolveDecisions)
        << What;
    EXPECT_EQ(RSolve.Stats.SolveConflicts, RPar.Stats.SolveConflicts)
        << What;
    EXPECT_EQ(RSolve.Stats.SolveClauses, RPar.Stats.SolveClauses) << What;
    EXPECT_EQ(RSolve.Stats.ValueConsistent, RPar.Stats.ValueConsistent)
        << What;
  }
  EXPECT_GT(Compared, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesClassics, MetamorphicTest, [] {
      std::vector<FuzzCase> Cases;
      for (const std::string &Name :
           {"MP", "MP+rel+acq", "SB", "LB", "2+2W", "S"})
        for (uint64_t Seed : {1ull, 7ull, 23ull})
          Cases.push_back({Name, Seed});
      return testing::ValuesIn(Cases);
    }(),
    [](const testing::TestParamInfo<FuzzCase> &Info) {
      std::string Name = Info.param.Classic + "_seed" +
                         std::to_string(Info.param.Seed);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

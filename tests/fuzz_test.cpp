//===--- fuzz_test.cpp - Metamorphic mutation tests -----------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the l2c fuzzing stage: every mutation must be
/// semantics-preserving, i.e. the mutant's outcome set over the original
/// observables equals the original's, and the full pipeline must reach
/// the same verdict on mutant and original (the metamorphic relation
/// Télétchat shares with C4/Orion, paper §II-B).
///
//===----------------------------------------------------------------------===//

#include "core/Fuzz.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "diy/Generator.h"
#include "litmus/Printer.h"
#include "sim/Backend.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"
#include "sim/SkeletonCache.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// Outcomes of \p T under rc11, projected on \p Keys.
OutcomeSet projectedOutcomes(const LitmusTest &T,
                             const std::vector<std::string> &Keys) {
  SimResult R = simulateC(T, "rc11");
  EXPECT_TRUE(R.ok()) << R.Error;
  OutcomeSet Out;
  for (const Outcome &O : R.Allowed)
    Out.insert(O.projected(Keys));
  return Out;
}

struct FuzzCase {
  std::string Classic;
  uint64_t Seed;
};

class MetamorphicTest : public testing::TestWithParam<FuzzCase> {};

/// Restores the process-wide skeleton cache to its disabled default even
/// when an ASSERT bails out of a test body early.
struct SkelCacheGuard {
  ~SkelCacheGuard() { simcore::SkeletonCache::instance().setCapacity(0); }
};

void suffixExpr(Expr &E) {
  if (E.K == Expr::Kind::Reg)
    E.RegName += "_d";
  for (Expr &Op : E.Ops)
    suffixExpr(Op);
}

void suffixBody(std::vector<Stmt> &Body) {
  for (Stmt &S : Body) {
    if (!S.Dst.empty())
      S.Dst += "_d";
    if (!S.Loc.empty())
      S.Loc += "_d";
    suffixExpr(S.Val);
    suffixExpr(S.Cond);
    suffixBody(S.Then);
    suffixBody(S.Else);
  }
}

void suffixPredicate(Predicate &P) {
  if (P.K == Predicate::Kind::Atom) {
    P.A.Name += "_d";
    if (P.A.K == PredAtom::Kind::RegEq)
      P.A.Thread += "_d";
  }
  for (Predicate &Op : P.Ops)
    suffixPredicate(Op);
}

/// A renamed duplicate of \p T with every location, thread and register
/// name suffixed -- same structure, same thread order, different names.
/// Structurally identical programs share skeleton-cache keys, so the
/// duplicate's cold run must hit everything the original inserted.
LitmusTest suffixRenamed(const LitmusTest &T) {
  LitmusTest D = T;
  D.Name = T.Name + "_dup";
  for (LocDecl &L : D.Locations)
    L.Name += "_d";
  for (Thread &Th : D.Threads) {
    Th.Name += "_d";
    suffixBody(Th.Body);
  }
  suffixPredicate(D.Final.P);
  return D;
}

} // namespace

TEST(FuzzTest, DeterministicInSeed) {
  FuzzOptions O;
  O.Seed = 11;
  LitmusTest A = mutateTest(classicTest("MP"), O);
  LitmusTest B = mutateTest(classicTest("MP"), O);
  EXPECT_EQ(printLitmusC(A), printLitmusC(B));
}

TEST(FuzzTest, MutantsStayValid) {
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    FuzzOptions O;
    O.Seed = Seed;
    O.Rounds = 4;
    LitmusTest M = mutateTest(classicTest("MP+fences"), O);
    EXPECT_TRUE(M.validate().empty())
        << "seed " << Seed << ": " << M.validate() << "\n"
        << printLitmusC(M);
  }
}

TEST(FuzzTest, MutantsDiffer) {
  // Enough rounds should actually change the program.
  FuzzOptions O;
  O.Seed = 3;
  O.Rounds = 5;
  LitmusTest M = mutateTest(classicTest("MP"), O);
  EXPECT_NE(printLitmusC(M), printLitmusC(classicTest("MP")));
}

TEST_P(MetamorphicTest, OutcomesPreservedOverOriginalObservables) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  std::vector<std::string> Keys;
  Original.Final.P.collectKeys(Keys);

  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  // Key caveat: register renaming rewrites the predicate, so project the
  // mutant on *its* keys and compare values positionally via the shared
  // location keys plus renamed register keys.
  std::vector<std::string> MutantKeys;
  Mutant.Final.P.collectKeys(MutantKeys);
  ASSERT_EQ(Keys.size(), MutantKeys.size());

  OutcomeSet A = projectedOutcomes(Original, Keys);
  OutcomeSet BRaw = projectedOutcomes(Mutant, MutantKeys);
  // Rename mutant keys back to the original vocabulary.
  std::vector<std::pair<std::string, std::string>> Back;
  for (size_t I = 0; I != Keys.size(); ++I)
    Back.emplace_back(MutantKeys[I], Keys[I]);
  OutcomeSet B;
  for (const Outcome &Out : BRaw)
    B.insert(Out.renamed(Back));
  EXPECT_EQ(A, B) << C.Classic << " seed " << C.Seed << "\n"
                  << printLitmusC(Mutant);
}

TEST_P(MetamorphicTest, PipelineVerdictAgrees) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TelechatResult A = runTelechat(Original, P);
  TelechatResult B = runTelechat(Mutant, P);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(A.isBug(), B.isBug())
      << C.Classic << " seed " << C.Seed << "\n"
      << printLitmusC(Mutant);
}

TEST(FuzzTest, GenerativeDifferentialBattery) {
  // 200 seeds of diy generation at a cycle-length cap that favours
  // arithmetic-carrying Data/Ctrl edges (Data stores `v + (r^r)`, so
  // under the symbolic-transform domain the stored value stays tracked
  // where the copy-chain-only domain sees Top). For every generated
  // test the outcome set must be byte-identical with RfValuePruning on
  // vs off, with the transform domain degraded to copy-chains, and at
  // -j1 vs -j4 -- and the transform domain must prune strictly more
  // than the copy-chain baseline on at least one seed.
  unsigned Compared = 0, XformWins = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue; // attempt budget exhausted: nothing to compare
    const LitmusTest &T = Tests.front();

    SimOptions On;
    SimOptions CopyOnly;
    CopyOnly.RfTransformDomain = false;
    SimOptions Off;
    Off.RfValuePruning = false;
    SimOptions Par;
    Par.Jobs = 4;

    SimResult ROn = simulateC(T, "rc11", On);
    SimResult RCopy = simulateC(T, "rc11", CopyOnly);
    SimResult ROff = simulateC(T, "rc11", Off);
    SimResult RPar = simulateC(T, "rc11", Par);
    ASSERT_TRUE(ROn.ok()) << "seed " << Seed << ": " << ROn.Error;
    ASSERT_FALSE(ROff.TimedOut) << "seed " << Seed;
    ++Compared;

    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T);
    // Byte-equality of the rendered outcome sets, not just set
    // equality: the string is what campaign JSONs and journals carry.
    std::string Expect = outcomeSetToString(ROff.Allowed);
    EXPECT_EQ(outcomeSetToString(ROn.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RCopy.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RPar.Allowed), Expect) << What;
    EXPECT_EQ(ROn.Flags, ROff.Flags) << What;
    // -j4 must also agree on every deterministic counter.
    EXPECT_EQ(ROn.Stats.RfCandidates, RPar.Stats.RfCandidates) << What;
    EXPECT_EQ(ROn.Stats.RfSourcesPruned, RPar.Stats.RfSourcesPruned)
        << What;
    EXPECT_EQ(ROn.Stats.RfPruned, RPar.Stats.RfPruned) << What;
    // The copy attribution reproduces the copy-chain-only baseline; the
    // transform domain never prunes less.
    EXPECT_EQ(ROn.Stats.RfSourcesPrunedCopy,
              RCopy.Stats.RfSourcesPruned)
        << What;
    EXPECT_GE(ROn.Stats.RfSourcesPruned, RCopy.Stats.RfSourcesPruned)
        << What;
    if (ROn.Stats.RfSourcesPruned > RCopy.Stats.RfSourcesPruned)
      ++XformWins;
  }
  // The generator's attempt budget drops some seeds, but the battery
  // must remain a battery -- and the transform domain must have beaten
  // the copy-chain baseline somewhere in it.
  EXPECT_GT(Compared, 100u);
  EXPECT_GT(XformWins, 0u) << "transform domain never out-pruned the "
                              "copy-chain baseline across the battery";
}

TEST(FuzzTest, BackendDifferentialBattery) {
  // The same 200-seed generative stream, pitted across backends: for
  // every generated test the sweep, the solver (at -j1 and -j4) and
  // Auto must render byte-identical outcome sets, identical flags and
  // identical deterministic counters -- the backend only changes how
  // the candidate space is covered, never what comes out of it. The
  // solver's own counters must in turn be Jobs-invariant.
  unsigned Compared = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue; // attempt budget exhausted: nothing to compare
    const LitmusTest &T = Tests.front();

    SimOptions SweepO;
    SweepO.Backend = SimBackendKind::Sweep;
    SimOptions SolveO;
    SolveO.Backend = SimBackendKind::Solve;
    SolveO.Jobs = 1;
    SimOptions SolvePar = SolveO;
    SolvePar.Jobs = 4;
    SimOptions AutoO;
    AutoO.Backend = SimBackendKind::Auto;

    SimResult RSweep = simulateC(T, "rc11", SweepO);
    SimResult RSolve = simulateC(T, "rc11", SolveO);
    SimResult RPar = simulateC(T, "rc11", SolvePar);
    SimResult RAuto = simulateC(T, "rc11", AutoO);
    ASSERT_TRUE(RSweep.ok()) << "seed " << Seed << ": " << RSweep.Error;
    ASSERT_TRUE(RSolve.ok()) << "seed " << Seed << ": " << RSolve.Error;
    ASSERT_FALSE(RSweep.TimedOut) << "seed " << Seed;
    ASSERT_FALSE(RSolve.TimedOut) << "seed " << Seed;
    ++Compared;

    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T);
    std::string Expect = outcomeSetToString(RSweep.Allowed);
    EXPECT_EQ(outcomeSetToString(RSolve.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RPar.Allowed), Expect) << What;
    EXPECT_EQ(outcomeSetToString(RAuto.Allowed), Expect) << What;
    EXPECT_EQ(RSolve.Flags, RSweep.Flags) << What;
    EXPECT_EQ(RAuto.Flags, RSweep.Flags) << What;
    // The engines share the per-combo pipeline downstream of rf
    // selection, so the post-fixpoint counters agree exactly.
    EXPECT_EQ(RSolve.Stats.PathCombos, RSweep.Stats.PathCombos) << What;
    EXPECT_EQ(RSolve.Stats.ValueConsistent, RSweep.Stats.ValueConsistent)
        << What;
    EXPECT_EQ(RSolve.Stats.CoCandidates, RSweep.Stats.CoCandidates)
        << What;
    EXPECT_EQ(RSolve.Stats.AllowedExecutions,
              RSweep.Stats.AllowedExecutions)
        << What;
    EXPECT_EQ(RSolve.Stats.BackendUsed, uint8_t(SimBackendKind::Solve))
        << What;
    EXPECT_EQ(RSweep.Stats.BackendUsed, uint8_t(SimBackendKind::Sweep))
        << What;
    // -j must not change what the solver decided, only who decided it.
    EXPECT_EQ(RSolve.Stats.SolveDecisions, RPar.Stats.SolveDecisions)
        << What;
    EXPECT_EQ(RSolve.Stats.SolveConflicts, RPar.Stats.SolveConflicts)
        << What;
    EXPECT_EQ(RSolve.Stats.SolveClauses, RPar.Stats.SolveClauses) << What;
    EXPECT_EQ(RSolve.Stats.ValueConsistent, RPar.Stats.ValueConsistent)
        << What;
  }
  EXPECT_GT(Compared, 100u);
}

TEST(FuzzTest, SkeletonCacheDifferentialBattery) {
  // The cross-test skeleton cache (sim/SkeletonCache.h) must be
  // invisible in the outcomes: for 200 generated seeds, the outcome set
  // with the cache enabled -- cold or warm, -j1 or -j4, sweep or solve
  // -- is byte-identical to the cache-off reference. The counters are
  // pinned exactly: a run against a cleared cache hits nothing (snapshot
  // semantics hide same-run inserts), a repeat run hits everything the
  // first run missed, and both counts are Jobs-invariant.
  SkelCacheGuard Guard;
  auto &SC = simcore::SkeletonCache::instance();
  unsigned Compared = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue; // attempt budget exhausted: nothing to compare
    const LitmusTest &T = Tests.front();
    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T);

    // Cache-off reference: no lookups, no counters.
    SC.setCapacity(0);
    SimResult Ref = simulateC(T, "rc11");
    ASSERT_TRUE(Ref.ok()) << What << Ref.Error;
    ASSERT_FALSE(Ref.TimedOut) << What;
    EXPECT_EQ(Ref.Stats.SkelCacheHits + Ref.Stats.SkelCacheMisses, 0u)
        << What;
    std::string Expect = outcomeSetToString(Ref.Allowed);
    ++Compared;

    struct Config {
      SimBackendKind Backend;
      unsigned Jobs;
    };
    const Config Configs[] = {{SimBackendKind::Sweep, 1},
                              {SimBackendKind::Sweep, 4},
                              {SimBackendKind::Solve, 1},
                              {SimBackendKind::Solve, 4}};
    uint64_t SweepMisses = 0, SolveMisses = 0;
    for (const Config &C : Configs) {
      SimOptions O;
      O.Backend = C.Backend;
      O.Jobs = C.Jobs;
      std::string Where = What + "\nbackend=" +
                          (C.Backend == SimBackendKind::Solve ? "solve"
                                                              : "sweep") +
                          " -j" + std::to_string(C.Jobs);
      SC.clear();
      SC.setCapacity(256);
      SimResult R1 = simulateC(T, "rc11", O); // cold: misses only
      SimResult R2 = simulateC(T, "rc11", O); // warm: hits only
      EXPECT_EQ(outcomeSetToString(R1.Allowed), Expect) << Where;
      EXPECT_EQ(outcomeSetToString(R2.Allowed), Expect) << Where;
      EXPECT_EQ(R1.Flags, Ref.Flags) << Where;
      EXPECT_EQ(R2.Flags, Ref.Flags) << Where;
      EXPECT_EQ(R1.Stats.SkelCacheHits, 0u) << Where;
      EXPECT_GT(R1.Stats.SkelCacheMisses, 0u) << Where;
      EXPECT_EQ(R2.Stats.SkelCacheMisses, 0u) << Where;
      EXPECT_EQ(R2.Stats.SkelCacheHits, R1.Stats.SkelCacheMisses) << Where;
      // Per backend, the counters must not depend on -j.
      uint64_t &Prev = C.Backend == SimBackendKind::Solve ? SolveMisses
                                                          : SweepMisses;
      if (C.Jobs == 1)
        Prev = R1.Stats.SkelCacheMisses;
      else
        EXPECT_EQ(R1.Stats.SkelCacheMisses, Prev) << Where;
    }
  }
  EXPECT_GT(Compared, 100u);
}

TEST(FuzzTest, SkeletonCacheTinyCapacityAndRenamedDuplicates) {
  SkelCacheGuard Guard;
  auto &SC = simcore::SkeletonCache::instance();

  // A thrashing cache (capacity 1) may only cost hits, never outcomes.
  // Find a classic with more than one combo so the second insert must
  // evict the first, then pin that evictions are actually counted.
  bool SawEviction = false;
  for (const std::string &Name : classicNames()) {
    LitmusTest T = classicTest(Name);
    SC.setCapacity(0);
    SimResult Ref = simulateC(T, "rc11");
    ASSERT_TRUE(Ref.ok()) << Name << ": " << Ref.Error;
    std::string Expect = outcomeSetToString(Ref.Allowed);

    SC.clear();
    SC.setCapacity(1);
    SimResult R1 = simulateC(T, "rc11");
    SimResult R2 = simulateC(T, "rc11");
    EXPECT_EQ(outcomeSetToString(R1.Allowed), Expect) << Name;
    EXPECT_EQ(outcomeSetToString(R2.Allowed), Expect) << Name;
    if (R1.Stats.SkelCacheMisses > 1) {
      EXPECT_GT(R1.Stats.SkelCacheEvictions, 0u) << Name;
      SawEviction = true;
    }
  }
  EXPECT_TRUE(SawEviction)
      << "no classic produced a multi-combo eviction drill";

  // Cross-test reuse, the point of the cache: a renamed duplicate
  // (fresh location/thread/register names, same structure) hits every
  // skeleton the original inserted, and its outcomes are byte-identical
  // to its own cache-off reference.
  unsigned Reused = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomGenOptions G;
    G.Seed = Seed;
    G.Count = 1;
    G.MaxEdges = 8;
    std::vector<LitmusTest> Tests = generateRandomTests(G);
    if (Tests.empty())
      continue;
    const LitmusTest &T = Tests.front();
    LitmusTest D = suffixRenamed(T);
    std::string What = "seed " + std::to_string(Seed) + "\n" +
                       printLitmusC(T) + "\nduplicate:\n" + printLitmusC(D);

    SC.setCapacity(0);
    SimResult RefD = simulateC(D, "rc11");
    ASSERT_TRUE(RefD.ok()) << What << RefD.Error;

    SC.clear();
    SC.setCapacity(256);
    SimResult RT = simulateC(T, "rc11"); // cold: populates the cache
    SimResult RD = simulateC(D, "rc11"); // different test, warm anyway
    EXPECT_EQ(outcomeSetToString(RD.Allowed),
              outcomeSetToString(RefD.Allowed))
        << What;
    EXPECT_EQ(RD.Stats.SkelCacheMisses, 0u) << What;
    EXPECT_EQ(RD.Stats.SkelCacheHits, RT.Stats.SkelCacheMisses) << What;
    ++Reused;
  }
  EXPECT_GT(Reused, 15u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesClassics, MetamorphicTest, [] {
      std::vector<FuzzCase> Cases;
      for (const std::string &Name :
           {"MP", "MP+rel+acq", "SB", "LB", "2+2W", "S"})
        for (uint64_t Seed : {1ull, 7ull, 23ull})
          Cases.push_back({Name, Seed});
      return testing::ValuesIn(Cases);
    }(),
    [](const testing::TestParamInfo<FuzzCase> &Info) {
      std::string Name = Info.param.Classic + "_seed" +
                         std::to_string(Info.param.Seed);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===--- fuzz_test.cpp - Metamorphic mutation tests -----------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the l2c fuzzing stage: every mutation must be
/// semantics-preserving, i.e. the mutant's outcome set over the original
/// observables equals the original's, and the full pipeline must reach
/// the same verdict on mutant and original (the metamorphic relation
/// Télétchat shares with C4/Orion, paper §II-B).
///
//===----------------------------------------------------------------------===//

#include "core/Fuzz.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "litmus/Printer.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

/// Outcomes of \p T under rc11, projected on \p Keys.
OutcomeSet projectedOutcomes(const LitmusTest &T,
                             const std::vector<std::string> &Keys) {
  SimResult R = simulateC(T, "rc11");
  EXPECT_TRUE(R.ok()) << R.Error;
  OutcomeSet Out;
  for (const Outcome &O : R.Allowed)
    Out.insert(O.projected(Keys));
  return Out;
}

struct FuzzCase {
  std::string Classic;
  uint64_t Seed;
};

class MetamorphicTest : public testing::TestWithParam<FuzzCase> {};

} // namespace

TEST(FuzzTest, DeterministicInSeed) {
  FuzzOptions O;
  O.Seed = 11;
  LitmusTest A = mutateTest(classicTest("MP"), O);
  LitmusTest B = mutateTest(classicTest("MP"), O);
  EXPECT_EQ(printLitmusC(A), printLitmusC(B));
}

TEST(FuzzTest, MutantsStayValid) {
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    FuzzOptions O;
    O.Seed = Seed;
    O.Rounds = 4;
    LitmusTest M = mutateTest(classicTest("MP+fences"), O);
    EXPECT_TRUE(M.validate().empty())
        << "seed " << Seed << ": " << M.validate() << "\n"
        << printLitmusC(M);
  }
}

TEST(FuzzTest, MutantsDiffer) {
  // Enough rounds should actually change the program.
  FuzzOptions O;
  O.Seed = 3;
  O.Rounds = 5;
  LitmusTest M = mutateTest(classicTest("MP"), O);
  EXPECT_NE(printLitmusC(M), printLitmusC(classicTest("MP")));
}

TEST_P(MetamorphicTest, OutcomesPreservedOverOriginalObservables) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  std::vector<std::string> Keys;
  Original.Final.P.collectKeys(Keys);

  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  // Key caveat: register renaming rewrites the predicate, so project the
  // mutant on *its* keys and compare values positionally via the shared
  // location keys plus renamed register keys.
  std::vector<std::string> MutantKeys;
  Mutant.Final.P.collectKeys(MutantKeys);
  ASSERT_EQ(Keys.size(), MutantKeys.size());

  OutcomeSet A = projectedOutcomes(Original, Keys);
  OutcomeSet BRaw = projectedOutcomes(Mutant, MutantKeys);
  // Rename mutant keys back to the original vocabulary.
  std::vector<std::pair<std::string, std::string>> Back;
  for (size_t I = 0; I != Keys.size(); ++I)
    Back.emplace_back(MutantKeys[I], Keys[I]);
  OutcomeSet B;
  for (const Outcome &Out : BRaw)
    B.insert(Out.renamed(Back));
  EXPECT_EQ(A, B) << C.Classic << " seed " << C.Seed << "\n"
                  << printLitmusC(Mutant);
}

TEST_P(MetamorphicTest, PipelineVerdictAgrees) {
  const FuzzCase &C = GetParam();
  LitmusTest Original = classicTest(C.Classic);
  FuzzOptions O;
  O.Seed = C.Seed;
  LitmusTest Mutant = mutateTest(Original, O);
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TelechatResult A = runTelechat(Original, P);
  TelechatResult B = runTelechat(Mutant, P);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(A.isBug(), B.isBug())
      << C.Classic << " seed " << C.Seed << "\n"
      << printLitmusC(Mutant);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesClassics, MetamorphicTest, [] {
      std::vector<FuzzCase> Cases;
      for (const std::string &Name :
           {"MP", "MP+rel+acq", "SB", "LB", "2+2W", "S"})
        for (uint64_t Seed : {1ull, 7ull, 23ull})
          Cases.push_back({Name, Seed});
      return testing::ValuesIn(Cases);
    }(),
    [](const testing::TestParamInfo<FuzzCase> &Info) {
      std::string Name = Info.param.Classic + "_seed" +
                         std::to_string(Info.param.Seed);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===--- explore_test.cpp - Dynamic exploration backend tests -------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soundness and convergence tests for the explore backend. The
/// backend's contract is *sound subset*: every outcome it reports must
/// be in the exhaustive sweep's set, on any seed, job count and
/// iteration budget -- checked here as byte-level set inclusion on 200
/// generated tests. Convergence (reaching the *full* set) is only
/// promised once the budget covers the reachable rf space, which the
/// default budget does for the classic litmus shapes: that is the
/// convergence gate.
///
//===----------------------------------------------------------------------===//

#include "diy/Classics.h"
#include "diy/Generator.h"
#include "diy/RealWorld.h"
#include "litmus/Parser.h"
#include "sim/Backend.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace telechat;

namespace {

/// Asserts Sub \subseteq Super as literal outcome-set membership -- the
/// byte-provable form of the backend's soundness contract.
void expectOutcomeSubset(const OutcomeSet &Sub, const OutcomeSet &Super,
                         const std::string &Label) {
  for (const Outcome &O : Sub)
    EXPECT_TRUE(Super.count(O))
        << Label << ": explore reported outcome [" << O.toString()
        << "] that the exhaustive sweep does not allow";
}

SimResult runBackend(const LitmusTest &T, SimBackendKind Backend,
                     unsigned Jobs, uint64_t Iterations) {
  SimOptions O;
  O.Backend = Backend;
  O.Jobs = Jobs;
  if (Iterations)
    O.ExploreIterations = Iterations;
  return simulateC(T, "rc11", O);
}

} // namespace

//===----------------------------------------------------------------------===//
// Soundness battery: 200 generated seeds x {j1, j4} x iteration budgets
//===----------------------------------------------------------------------===//

TEST(ExploreBackendTest, TwoHundredSeedSoundnessBattery) {
  unsigned Generated = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomGenOptions Gen;
    Gen.Seed = Seed;
    Gen.Count = 1;
    std::vector<LitmusTest> Tests = generateRandomTests(Gen);
    if (Tests.empty())
      continue; // This seed's chain attempts were all rejected.
    ++Generated;
    const LitmusTest &T = Tests[0];
    const std::string Label = "seed " + std::to_string(Seed);

    SimResult Sweep = runBackend(T, SimBackendKind::Sweep, 1, 0);
    ASSERT_TRUE(Sweep.ok()) << Label << ": " << Sweep.Error;
    ASSERT_FALSE(Sweep.TimedOut) << Label;

    for (uint64_t Iters : {uint64_t(4), uint64_t(64)}) {
      SimResult J1 = runBackend(T, SimBackendKind::Explore, 1, Iters);
      SimResult J4 = runBackend(T, SimBackendKind::Explore, 4, Iters);
      ASSERT_TRUE(J1.ok()) << Label << ": " << J1.Error;
      ASSERT_TRUE(J4.ok()) << Label << ": " << J4.Error;
      EXPECT_EQ(J1.Stats.BackendUsed, uint8_t(SimBackendKind::Explore));
      expectOutcomeSubset(J1.Allowed, Sweep.Allowed,
                          Label + " j1 iters=" + std::to_string(Iters));
      expectOutcomeSubset(J4.Allowed, Sweep.Allowed,
                          Label + " j4 iters=" + std::to_string(Iters));
      // Per-combo exploration is a pure function of (seed, combo,
      // iteration) and one combo is one shard, so the merged set is
      // jobs-invariant, not merely both-sound.
      EXPECT_EQ(outcomeSetToString(J1.Allowed),
                outcomeSetToString(J4.Allowed))
          << Label << " iters=" << Iters;
      EXPECT_EQ(J1.Flags, J4.Flags) << Label;
      EXPECT_EQ(J1.Stats.ExploreOutcomesFound, J1.Allowed.size()) << Label;
      EXPECT_LE(J1.Stats.ExploreSchedules, J1.Stats.ExploreIterations)
          << Label;
    }
  }
  // The generator must actually have exercised the battery; well over
  // half the seeds produce a test (rejections are rare).
  EXPECT_GE(Generated, 150u);
}

//===----------------------------------------------------------------------===//
// Convergence gate: classics reach the full set within the default budget
//===----------------------------------------------------------------------===//

TEST(ExploreBackendTest, ClassicsConvergeToTheExhaustiveSet) {
  for (const char *Name :
       {"MP", "MP+rel+acq", "MP+fences", "SB", "LB", "2+2W", "S", "IRIW"}) {
    LitmusTest T = classicTest(Name);
    SimResult Sweep = runBackend(T, SimBackendKind::Sweep, 1, 0);
    SimResult Exp = runBackend(T, SimBackendKind::Explore, 1, 0);
    ASSERT_TRUE(Sweep.ok()) << Name << ": " << Sweep.Error;
    ASSERT_TRUE(Exp.ok()) << Name << ": " << Exp.Error;
    // Equality, not just inclusion: the default iteration budget must
    // cover these shapes' full reachable rf spaces.
    EXPECT_EQ(outcomeSetToString(Sweep.Allowed),
              outcomeSetToString(Exp.Allowed))
        << Name;
    EXPECT_EQ(Sweep.Flags, Exp.Flags) << Name;
    EXPECT_EQ(Exp.Stats.BackendUsed, uint8_t(SimBackendKind::Explore))
        << Name;
    EXPECT_GT(Exp.Stats.ExploreIterations, 0u) << Name;
    EXPECT_GT(Exp.Stats.ExploreSchedules, 0u) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Realworld suite: every family's weak outcome within the default budget
//===----------------------------------------------------------------------===//

TEST(ExploreBackendTest, RealWorldFamiliesConvergeOnTheirWeakOutcomes) {
  // For each family, the all-relaxed sweep point documents an observable
  // weak behaviour (RealWorldCase::Status). The exploration oracle must
  // find that witness within its default iteration budget -- a dynamic
  // tool that misses the bug the idiom is famous for would be useless as
  // a campaign backend -- while staying a byte-provable subset of the
  // exhaustive sweep.
  std::map<std::string, const RealWorldCase *> Picked;
  std::vector<RealWorldCase> Suite = realWorldSuite();
  for (const RealWorldCase &C : Suite)
    if (C.Status == WeakStatus::Observable && !Picked.count(C.Family))
      Picked[C.Family] = &C; // First observable point: all-relaxed.
  ASSERT_EQ(Picked.size(), realWorldFamilies().size());

  for (const auto &[Family, Case] : Picked) {
    const LitmusTest &T = Case->Test;
    SimResult Sweep = runBackend(T, SimBackendKind::Sweep, 1, 0);
    SimResult Exp = runBackend(T, SimBackendKind::Explore, 1, 0);
    ASSERT_TRUE(Sweep.ok()) << T.Name << ": " << Sweep.Error;
    ASSERT_TRUE(Exp.ok()) << T.Name << ": " << Exp.Error;
    EXPECT_EQ(Exp.Stats.BackendUsed, uint8_t(SimBackendKind::Explore))
        << T.Name;
    expectOutcomeSubset(Exp.Allowed, Sweep.Allowed, T.Name);
    bool Witnessed = false;
    for (const Outcome &O : Exp.Allowed)
      Witnessed |= T.Final.P.eval(O);
    EXPECT_TRUE(Witnessed)
        << T.Name << ": explore missed the " << Family
        << " family's documented weak outcome within the default budget";
  }
}

TEST(ExploreBackendTest, RealWorldExploreIsSoundAcrossTheWholeSuite) {
  // Subset soundness over every instantiation, on a small budget (the
  // full-budget witness check above covers convergence; this pins that
  // no sweep point -- forbidden, observable or unspecified -- can make
  // the oracle invent an outcome).
  std::vector<RealWorldCase> Suite = realWorldSuite();
  ASSERT_GE(Suite.size(), 200u);
  // Each simulation is pinned to one job, so the battery parallelises
  // across cases; failures are collected per slot (gtest assertions are
  // not thread-safe) and reported after the pool drains.
  std::vector<std::string> Failures(Suite.size());
  ThreadPool Pool(0);
  Pool.parallelFor(Suite.size(), [&](size_t I) {
    const RealWorldCase &C = Suite[I];
    SimResult Sweep = runBackend(C.Test, SimBackendKind::Sweep, 1, 0);
    SimResult Exp = runBackend(C.Test, SimBackendKind::Explore, 1, 32);
    if (!Sweep.ok() || !Exp.ok()) {
      Failures[I] = C.Test.Name + ": " + Sweep.Error + Exp.Error;
      return;
    }
    for (const Outcome &O : Exp.Allowed) {
      if (!Sweep.Allowed.count(O))
        Failures[I] = C.Test.Name + ": explore reported outcome [" +
                      O.toString() + "] outside the exhaustive set";
      if (C.Status == WeakStatus::Forbidden && C.Test.Final.P.eval(O))
        Failures[I] = C.Test.Name + ": explore reported a forbidden outcome";
    }
  });
  for (const std::string &F : Failures)
    if (!F.empty())
      ADD_FAILURE() << F;
}

//===----------------------------------------------------------------------===//
// Determinism, starvation, and the campaign budget split
//===----------------------------------------------------------------------===//

TEST(ExploreBackendTest, SameSeedSameSchedulesSameSet) {
  LitmusTest T = classicTest("IRIW");
  SimOptions O;
  O.Backend = SimBackendKind::Explore;
  O.ExploreSeed = 7;
  SimResult A = simulateC(T, "rc11", O);
  SimResult B = simulateC(T, "rc11", O);
  ASSERT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(outcomeSetToString(A.Allowed), outcomeSetToString(B.Allowed));
  EXPECT_EQ(A.Stats.ExploreIterations, B.Stats.ExploreIterations);
  EXPECT_EQ(A.Stats.ExploreSchedules, B.Stats.ExploreSchedules);
}

TEST(ExploreBackendTest, StarvedBudgetIsStillSound) {
  // One schedule per combo: almost certainly not converged, but every
  // reported outcome must still be exhaustively validated.
  LitmusTest T = classicTest("IRIW");
  SimResult Sweep = runBackend(T, SimBackendKind::Sweep, 1, 0);
  SimResult Starved = runBackend(T, SimBackendKind::Explore, 1, 1);
  ASSERT_TRUE(Starved.ok()) << Starved.Error;
  expectOutcomeSubset(Starved.Allowed, Sweep.Allowed, "starved IRIW");
  EXPECT_EQ(Starved.Stats.ExploreIterations, 1u);
}

TEST(ExploreBackendTest, ExploreBudgetReroutesBigUnitsOnly) {
  LitmusTest T = classicTest("MP");
  SimProgram P = lowerLitmusC(T);
  const uint64_t Space = estimatedRfSpace(P);
  ASSERT_GT(Space, 1u);

  // Budget at or below the estimated space: rerouted to explore even
  // though the selection says sweep.
  SimOptions Split;
  Split.Backend = SimBackendKind::Sweep;
  Split.ExploreBudget = Space;
  SimResult Dyn = simulateC(T, "rc11", Split);
  ASSERT_TRUE(Dyn.ok()) << Dyn.Error;
  EXPECT_EQ(Dyn.Stats.BackendUsed, uint8_t(SimBackendKind::Explore));

  // Budget above the estimated space: the selected backend runs.
  Split.ExploreBudget = Space + 1;
  SimResult Exh = simulateC(T, "rc11", Split);
  ASSERT_TRUE(Exh.ok()) << Exh.Error;
  EXPECT_EQ(Exh.Stats.BackendUsed, uint8_t(SimBackendKind::Sweep));
  EXPECT_EQ(outcomeSetToString(Dyn.Allowed), outcomeSetToString(Exh.Allowed));
}

TEST(ExploreBackendTest, ExploreFinishesWhereTheSweepTimesOut) {
  // N junk loads with two candidate writes each: a 2^N rf space every
  // assignment of which is consistent, so a tight step budget exhausts
  // the sweep. The explore oracle's work is bounded by its iteration
  // budget instead of the space, so the same unit completes -- this is
  // the regime an --explore-budget campaign reroutes, which is why the
  // reroute (not a direct backend selection) drives the test.
  const unsigned Junk = 16;
  std::string Locs, Params, Stores, Loads;
  for (unsigned I = 0; I != Junk; ++I) {
    std::string X = "x" + std::to_string(I);
    Locs += "*" + X + " = 0; ";
    Params += (I ? ", " : "") + ("atomic_int* " + X);
    Stores += "  atomic_store_explicit(" + X +
              ", 1, memory_order_relaxed);\n";
    Loads += "  int r" + std::to_string(I) + " = atomic_load_explicit(" +
             X + ", memory_order_relaxed);\n";
  }
  std::string Src = "C junkwide\n{ " + Locs + "}\nvoid P0(" + Params +
                    ") {\n" + Stores + "}\nvoid P1(" + Params + ") {\n" +
                    Loads + "}\nexists (P1:r0=1)\n";
  ErrorOr<LitmusTest> T = parseLitmusC(Src);
  ASSERT_TRUE(T.hasValue()) << T.error();
  ASSERT_GE(estimatedRfSpace(lowerLitmusC(*T)), uint64_t(1) << Junk);

  SimOptions Tight;
  Tight.MaxSteps = 20000; // < 2^16: sweeping the space exhausts it.
  SimOptions SweepO = Tight, SplitO = Tight;
  SweepO.Backend = SimBackendKind::Sweep;
  SplitO.Backend = SimBackendKind::Sweep;
  SplitO.ExploreBudget = 1 << 10; // 2^16 estimated >= budget: reroute.
  SplitO.ExploreIterations = 64;
  SimResult SweepR = simulateC(*T, "rc11", SweepO);
  SimResult SplitR = simulateC(*T, "rc11", SplitO);
  EXPECT_TRUE(SweepR.TimedOut);
  ASSERT_TRUE(SplitR.ok()) << SplitR.Error;
  EXPECT_FALSE(SplitR.TimedOut);
  EXPECT_EQ(SplitR.Stats.BackendUsed, uint8_t(SimBackendKind::Explore));
  EXPECT_GT(SplitR.Allowed.size(), 0u);

  // Sound versus the sweep given the budget it actually needs.
  SimResult Full = simulateC(*T, "rc11", SimOptions());
  ASSERT_TRUE(Full.ok()) << Full.Error;
  ASSERT_FALSE(Full.TimedOut);
  expectOutcomeSubset(SplitR.Allowed, Full.Allowed, "junkwide");
}

TEST(ExploreBackendTest, AutoNeverResolvesToExplore) {
  // Auto promises the exhaustive set; the unsound-by-omission oracle is
  // an explicit opt-in (flag or ExploreBudget).
  for (const char *Name : {"MP", "IRIW"}) {
    SimProgram P = lowerLitmusC(classicTest(Name));
    EXPECT_NE(&resolveBackend(SimBackendKind::Auto, P), &exploreBackend())
        << Name;
  }
  SimProgram P = lowerLitmusC(classicTest("MP"));
  EXPECT_EQ(&resolveBackend(SimBackendKind::Explore, P), &exploreBackend());
}

//===--- parallel_test.cpp - Sharded-enumeration determinism tests --------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
// The contract under test (SimOptions::Jobs): any run that completes
// within budget is bit-identical no matter how many workers enumerate
// it, and the shared step budget bounds *total* work across workers.
//
//===----------------------------------------------------------------------===//

#include "core/MCompare.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "events/Dot.h"
#include "litmus/Parser.h"
#include "sim/CFrontend.h"
#include "sim/ShardScheduler.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace telechat;

namespace {

/// Everything that must match between a sequential and a sharded run of
/// the same test (Seconds is wall clock and excluded by design).
void expectIdentical(const SimResult &Seq, const SimResult &Par,
                     const std::string &What) {
  EXPECT_EQ(Seq.Error, Par.Error) << What;
  EXPECT_EQ(Seq.TimedOut, Par.TimedOut) << What;
  EXPECT_EQ(Seq.Allowed, Par.Allowed) << What;
  EXPECT_EQ(Seq.Flags, Par.Flags) << What;
  EXPECT_EQ(Seq.Stats.PathCombos, Par.Stats.PathCombos) << What;
  EXPECT_EQ(Seq.Stats.RfCandidates, Par.Stats.RfCandidates) << What;
  EXPECT_EQ(Seq.Stats.ValueConsistent, Par.Stats.ValueConsistent) << What;
  EXPECT_EQ(Seq.Stats.CoCandidates, Par.Stats.CoCandidates) << What;
  EXPECT_EQ(Seq.Stats.AllowedExecutions, Par.Stats.AllowedExecutions) << What;
  // The optimisation counters are part of the determinism contract too.
  EXPECT_EQ(Seq.Stats.RfSourcesPruned, Par.Stats.RfSourcesPruned) << What;
  EXPECT_EQ(Seq.Stats.RfSourcesPrunedCopy, Par.Stats.RfSourcesPrunedCopy)
      << What;
  EXPECT_EQ(Seq.Stats.RfSourcesPrunedXform,
            Par.Stats.RfSourcesPrunedXform)
      << What;
  EXPECT_EQ(Seq.Stats.RfPruned, Par.Stats.RfPruned) << What;
  EXPECT_EQ(Seq.Stats.CatEvalsAvoided, Par.Stats.CatEvalsAvoided) << What;
}

/// What must match between runs with pruning/caching on vs off: every
/// outcome-level field, and every stat not measuring the pruned work
/// itself (RfCandidates legitimately shrinks when rf sources are
/// dropped).
void expectSameOutcomes(const SimResult &On, const SimResult &Off,
                        const std::string &What) {
  EXPECT_EQ(On.Error, Off.Error) << What;
  EXPECT_EQ(On.TimedOut, Off.TimedOut) << What;
  EXPECT_EQ(On.Allowed, Off.Allowed) << What;
  EXPECT_EQ(On.Flags, Off.Flags) << What;
  EXPECT_EQ(On.Stats.PathCombos, Off.Stats.PathCombos) << What;
  EXPECT_EQ(On.Stats.ValueConsistent, Off.Stats.ValueConsistent) << What;
  EXPECT_EQ(On.Stats.CoCandidates, Off.Stats.CoCandidates) << What;
  EXPECT_EQ(On.Stats.AllowedExecutions, Off.Stats.AllowedExecutions)
      << What;
}

/// A branchy two-thread test: 8 path combos, so sharding covers both the
/// combo and the rf dimension.
const char *Branchy = R"(C branchy
{ *x = 0; *y = 0; *z = 0; }
void P0(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(z, 1, memory_order_relaxed); }
  int r1 = atomic_load_explicit(z, memory_order_relaxed);
  if (r1) { atomic_store_explicit(y, 2, memory_order_relaxed); }
}
void P1(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  if (r0) { atomic_store_explicit(x, 1, memory_order_relaxed); }
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(z, r1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r0=2)
)";

TEST(ParallelEnumerationTest, ClassicsIdenticalAcrossJobs) {
  for (const std::string &Name : classicNames()) {
    SimOptions Seq;
    Seq.Jobs = 1;
    SimOptions Par;
    Par.Jobs = 4;
    SimResult A = simulateC(classicTest(Name), "rc11", Seq);
    SimResult B = simulateC(classicTest(Name), "rc11", Par);
    ASSERT_TRUE(A.ok()) << Name;
    expectIdentical(A, B, Name);
    EXPECT_FALSE(A.TimedOut) << Name;
  }
}

TEST(ParallelEnumerationTest, PathCombosShardIdentically) {
  auto T = parseLitmusC(Branchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions Seq;
  Seq.Jobs = 1;
  SimResult A = simulateC(*T, "rc11", Seq);
  ASSERT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(A.Stats.PathCombos, 8u); // 4 paths x 2 paths
  for (unsigned J : {2u, 3u, 4u, 8u}) {
    SimOptions Par;
    Par.Jobs = J;
    SimResult B = simulateC(*T, "rc11", Par);
    expectIdentical(A, B, "branchy -j " + std::to_string(J));
  }
}

TEST(ParallelEnumerationTest, JobsZeroUsesHardwareAndMatches) {
  SimOptions Auto;
  Auto.Jobs = 0; // one worker per hardware thread
  SimResult A = simulateC(classicTest("IRIW"), "rc11");
  SimResult B = simulateC(classicTest("IRIW"), "rc11", Auto);
  expectIdentical(A, B, "IRIW -j auto");
}

TEST(ParallelEnumerationTest, CollectedExecutionsIdentical) {
  SimOptions Seq;
  Seq.Jobs = 1;
  Seq.CollectExecutions = true;
  Seq.MaxCollectedExecutions = 7; // force truncation mid-stream
  SimOptions Par = Seq;
  Par.Jobs = 4;
  SimResult A = simulateC(classicTest("IRIW"), "rc11", Seq);
  SimResult B = simulateC(classicTest("IRIW"), "rc11", Par);
  ASSERT_TRUE(A.ok());
  ASSERT_EQ(A.Executions.size(), 7u);
  ASSERT_EQ(B.Executions.size(), 7u);
  // Executions must come back in enumeration order: DOT is a faithful
  // serialisation, so compare the rendered graphs.
  for (size_t I = 0; I != A.Executions.size(); ++I)
    EXPECT_EQ(executionToDot(A.Executions[I], "g"),
              executionToDot(B.Executions[I], "g"))
        << "execution " << I;
}

TEST(ParallelEnumerationTest, SharedBudgetBoundsTotalWork) {
  // IRIW needs 32 enumeration steps (16 rf + 16 co); every worker draws
  // from one atomic budget, so the counted work can never exceed
  // MaxSteps no matter how many workers run.
  for (unsigned J : {1u, 4u}) {
    SimOptions Tight;
    Tight.MaxSteps = 20;
    Tight.Jobs = J;
    SimResult R = simulateC(classicTest("IRIW"), "rc11", Tight);
    EXPECT_TRUE(R.TimedOut) << "-j " << J;
    EXPECT_LE(R.Stats.RfCandidates + R.Stats.CoCandidates, Tight.MaxSteps)
        << "-j " << J;
  }
}

TEST(ParallelEnumerationTest, TimeoutFlagMatchesAcrossJobs) {
  // Generous budget: nobody times out; tiny budget: everybody does.
  for (uint64_t Budget : {uint64_t(2'000'000), uint64_t(50)}) {
    SimOptions Seq;
    Seq.MaxSteps = Budget;
    Seq.Jobs = 1;
    SimOptions Par = Seq;
    Par.Jobs = 4;
    SimResult A = simulateC(classicTest("IRIW"), "rc11", Seq);
    SimResult B = simulateC(classicTest("IRIW"), "rc11", Par);
    EXPECT_EQ(A.TimedOut, B.TimedOut) << "budget " << Budget;
  }
}

TEST(ParallelEnumerationTest, CompiledTestIdenticalAcrossJobs) {
  // End-to-end: the compiled (assembly-model) side shards identically
  // too, including under the architecture model.
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions Seq;
  Seq.Sim.Jobs = 1;
  TestOptions Par;
  Par.Sim.Jobs = 4;
  TelechatResult A = runTelechat(classicTest("MP+rel+acq"), P, Seq);
  TelechatResult B = runTelechat(classicTest("MP+rel+acq"), P, Par);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(A.SourceSim.Allowed, B.SourceSim.Allowed);
  EXPECT_EQ(A.TargetSim.Allowed, B.TargetSim.Allowed);
  EXPECT_EQ(A.Compare.K, B.Compare.K);
}

TEST(BatchApiTest, SimulateManyMatchesIndividual) {
  std::vector<SimProgram> Programs;
  for (const std::string &Name : {"MP", "SB", "LB", "2+2W", "WRC"})
    Programs.push_back(lowerLitmusC(classicTest(Name)));
  SimOptions Opts;
  Opts.Jobs = 4;
  std::vector<SimResult> Batch = simulateMany(Programs, "rc11", Opts);
  ASSERT_EQ(Batch.size(), Programs.size());
  for (size_t I = 0; I != Programs.size(); ++I) {
    SimResult Single = simulateProgram(Programs[I], "rc11");
    expectIdentical(Single, Batch[I], Programs[I].Name);
  }
}

TEST(BatchApiTest, RunTelechatManyMatchesIndividual) {
  std::vector<LitmusTest> Tests;
  for (const std::string &Name : {"MP", "LB", "SB"})
    Tests.push_back(classicTest(Name));
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  std::vector<TelechatResult> Batch = runTelechatMany(Tests, P,
                                                      TestOptions(), 4);
  ASSERT_EQ(Batch.size(), Tests.size());
  for (size_t I = 0; I != Tests.size(); ++I) {
    TelechatResult Single = runTelechat(Tests[I], P);
    EXPECT_EQ(Single.Error, Batch[I].Error);
    EXPECT_EQ(Single.SourceSim.Allowed, Batch[I].SourceSim.Allowed);
    EXPECT_EQ(Single.TargetSim.Allowed, Batch[I].TargetSim.Allowed);
    EXPECT_EQ(Single.Compare.K, Batch[I].Compare.K);
    EXPECT_EQ(Single.isBug(), Batch[I].isBug());
  }
}

TEST(BatchApiTest, McompareManyMatchesIndividual) {
  std::vector<SimResult> Sources, Targets;
  std::vector<std::vector<std::pair<std::string, std::string>>> Maps;
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  for (const std::string &Name : {"MP", "SB", "LB"}) {
    TelechatResult R = runTelechat(classicTest(Name), P);
    ASSERT_TRUE(R.ok()) << R.Error;
    Sources.push_back(R.SourceSim);
    Targets.push_back(R.TargetSim);
    Maps.push_back(R.Compiled.KeyMap);
  }
  std::vector<ComparePair> Pairs;
  for (size_t I = 0; I != Sources.size(); ++I)
    Pairs.push_back(ComparePair{&Sources[I], &Targets[I], &Maps[I]});
  std::vector<CompareResult> Batch = mcompareMany(Pairs, 4);
  ASSERT_EQ(Batch.size(), Pairs.size());
  for (size_t I = 0; I != Pairs.size(); ++I) {
    CompareResult Single = mcompare(Sources[I], Targets[I], Maps[I]);
    EXPECT_EQ(Single.K, Batch[I].K);
    EXPECT_EQ(Single.SourceRace, Batch[I].SourceRace);
    EXPECT_EQ(Single.Witnesses.size(), Batch[I].Witnesses.size());
  }
}


TEST(PruningCachingTest, ClassicsIdenticalOnVsOff) {
  // rf value pruning and incremental Cat evaluation must never change
  // what is found -- only how much work finding it takes.
  SimOptions Off;
  Off.RfValuePruning = false;
  Off.IncrementalCatEval = false;
  for (const std::string &Name : classicNames()) {
    SimResult A = simulateC(classicTest(Name), "rc11");
    SimResult B = simulateC(classicTest(Name), "rc11", Off);
    ASSERT_TRUE(A.ok()) << Name;
    expectSameOutcomes(A, B, Name);
  }
}

TEST(PruningCachingTest, BranchyIdenticalOnVsOffAcrossJobs) {
  auto T = parseLitmusC(Branchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions Off;
  Off.RfValuePruning = false;
  Off.IncrementalCatEval = false;
  SimResult Ref = simulateC(*T, "rc11", Off);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  for (unsigned J : {1u, 2u, 4u, 8u}) {
    for (bool Prune : {true, false}) {
      for (bool Cache : {true, false}) {
        SimOptions O;
        O.Jobs = J;
        O.RfValuePruning = Prune;
        O.IncrementalCatEval = Cache;
        SimResult R = simulateC(*T, "rc11", O);
        expectSameOutcomes(Ref, R,
                           "branchy -j " + std::to_string(J) +
                               (Prune ? " +prune" : " -prune") +
                               (Cache ? " +cache" : " -cache"));
      }
    }
  }
}

TEST(PruningCachingTest, BranchyActuallyPrunes) {
  auto T = parseLitmusC(Branchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimResult On = simulateC(*T, "rc11");
  SimOptions Off;
  Off.RfValuePruning = false;
  SimResult Ref = simulateC(*T, "rc11", Off);
  ASSERT_TRUE(On.ok()) << On.Error;
  // Constraint propagation must shrink the branchy test's rf space and
  // serve Cat work from the per-combo layer.
  EXPECT_GT(On.Stats.RfSourcesPruned, 0u);
  EXPECT_LT(On.Stats.RfCandidates, Ref.Stats.RfCandidates);
  EXPECT_GT(On.Stats.CatEvalsAvoided, 0u);
  EXPECT_EQ(Ref.Stats.RfSourcesPruned, 0u);
  EXPECT_EQ(Ref.Stats.RfPruned, 0u);
}

/// Arithmetic-heavy companion to Branchy: every branch condition flows
/// through a register *assigned* from arithmetic over a load (r^1,
/// r&1, r-2), and one store forwards r+1 into another thread's branch.
/// The copy-chain-only domain (RfTransformDomain off) sees Top at each
/// of those constraint sites; all extra pruning is the transform
/// domain's.
const char *ArithBranchy = R"(C arithbranchy
{ *x = 0; *y = 0; *z = 0; }
void P0(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r2 = r0 ^ 1;
  if (r2) { atomic_store_explicit(y, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 2, memory_order_relaxed); }
  int r1 = atomic_load_explicit(z, memory_order_relaxed);
  int r3 = r1 & 1;
  if (r3) { atomic_store_explicit(y, 3, memory_order_relaxed); }
}
void P1(atomic_int* x, atomic_int* y, atomic_int* z) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(z, r0 + 1, memory_order_relaxed);
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
  int r4 = r1 - 2;
  if (r4) { atomic_store_explicit(x, 1, memory_order_relaxed); }
}
exists (P0:r0=1 /\ P1:r1=2)
)";

TEST(PruningCachingTest, ArithTransformIdenticalAcrossModesAndJobs) {
  auto T = parseLitmusC(ArithBranchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions Off;
  Off.RfValuePruning = false;
  SimResult Ref = simulateC(*T, "rc11", Off);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  for (unsigned J : {1u, 4u}) {
    for (int Mode : {0, 1, 2}) { // off / copy-only / full transform
      SimOptions O;
      O.Jobs = J;
      O.RfValuePruning = Mode != 0;
      O.RfTransformDomain = Mode == 2;
      SimResult R = simulateC(*T, "rc11", O);
      expectSameOutcomes(Ref, R,
                         "arithbranchy -j " + std::to_string(J) +
                             " mode " + std::to_string(Mode));
    }
  }
}

TEST(PruningCachingTest, ArithTransformActuallyPrunes) {
  auto T = parseLitmusC(ArithBranchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimResult On = simulateC(*T, "rc11");
  SimOptions CopyOnly;
  CopyOnly.RfTransformDomain = false;
  SimResult Copy = simulateC(*T, "rc11", CopyOnly);
  ASSERT_TRUE(On.ok()) << On.Error;
  // The transform domain must prune strictly beyond the copy-chain
  // baseline, and the copy attribution must reproduce that baseline.
  EXPECT_GT(On.Stats.RfSourcesPrunedXform, 0u);
  EXPECT_GT(On.Stats.RfSourcesPruned, Copy.Stats.RfSourcesPruned);
  EXPECT_EQ(On.Stats.RfSourcesPrunedCopy, Copy.Stats.RfSourcesPruned);
  EXPECT_EQ(Copy.Stats.RfSourcesPrunedXform, 0u);
  EXPECT_LT(On.Stats.RfCandidates, Copy.Stats.RfCandidates);
  // The split always accounts for every pruned pair.
  EXPECT_EQ(On.Stats.RfSourcesPruned,
            On.Stats.RfSourcesPrunedCopy + On.Stats.RfSourcesPrunedXform);
}

TEST(PruningCachingTest, CollectedExecutionsIdenticalOnVsOff) {
  // Pruned candidates are never allowed, so the stream of collected
  // executions -- a prefix of the allowed stream in enumeration order --
  // must be identical with pruning on or off.
  auto T = parseLitmusC(Branchy);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions On;
  On.CollectExecutions = true;
  On.MaxCollectedExecutions = 5;
  SimOptions Off = On;
  Off.RfValuePruning = false;
  Off.IncrementalCatEval = false;
  SimResult A = simulateC(*T, "rc11", On);
  SimResult B = simulateC(*T, "rc11", Off);
  ASSERT_TRUE(A.ok());
  ASSERT_EQ(A.Executions.size(), B.Executions.size());
  for (size_t I = 0; I != A.Executions.size(); ++I)
    EXPECT_EQ(executionToDot(A.Executions[I], "g"),
              executionToDot(B.Executions[I], "g"))
        << "execution " << I;
}

TEST(PruningCachingTest, CompiledTestIdenticalOnVsOff) {
  // The assembly-model side (aarch64 model, tag-heavy, fencerel) must
  // be equally unaffected.
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions On;
  TestOptions Off;
  Off.Sim.RfValuePruning = false;
  Off.Sim.IncrementalCatEval = false;
  for (const char *Name : {"MP+rel+acq", "LB", "SB+scs"}) {
    TelechatResult A = runTelechat(classicTest(Name), P, On);
    TelechatResult B = runTelechat(classicTest(Name), P, Off);
    ASSERT_TRUE(A.ok()) << Name << ": " << A.Error;
    ASSERT_TRUE(B.ok()) << Name << ": " << B.Error;
    EXPECT_EQ(A.SourceSim.Allowed, B.SourceSim.Allowed) << Name;
    EXPECT_EQ(A.TargetSim.Allowed, B.TargetSim.Allowed) << Name;
    EXPECT_EQ(A.Compare.K, B.Compare.K) << Name;
  }
}


TEST(PruningCachingTest, ConstantInfeasibleCombosCollapse) {
  // A branch over a compile-time constant makes half the path combos
  // infeasible; their rf spaces must collapse to zero candidates
  // instead of consuming budget, with outcomes unaffected.
  const char *ConstGate = R"(C constgate
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  int r0 = 1;
  if (r0) { atomic_store_explicit(x, 1, memory_order_relaxed); }
  else { atomic_store_explicit(y, 1, memory_order_relaxed); }
  int r1 = atomic_load_explicit(y, memory_order_relaxed);
}
void P1(atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0, memory_order_relaxed);
}
exists (P0:r1=1)
)";
  auto T = parseLitmusC(ConstGate);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimOptions Off;
  Off.RfValuePruning = false;
  SimResult Ref = simulateC(*T, "rc11", Off);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  SimResult On = simulateC(*T, "rc11");
  expectSameOutcomes(On, Ref, "constgate on-vs-off");
  EXPECT_EQ(On.Stats.PathCombos, 2u);
  EXPECT_LT(On.Stats.RfCandidates, Ref.Stats.RfCandidates)
      << "the infeasible combo must not be enumerated";
  for (unsigned J : {2u, 4u}) {
    SimOptions Par;
    Par.Jobs = J;
    SimResult R = simulateC(*T, "rc11", Par);
    expectIdentical(On, R, "constgate -j " + std::to_string(J));
  }
}


//===----------------------------------------------------------------------===//
// ShardScheduler edge cases: the scheduler contract is "every item runs
// exactly once, stop is honoured between items" for ANY (items, workers)
// shape -- including the degenerate ones campaigns hit in practice
// (more workers than shards, empty waves, length-1 ranges).
//===----------------------------------------------------------------------===//

/// Runs a wave and returns per-item execution counts.
std::vector<unsigned> runWave(size_t NumItems, unsigned Workers,
                              const std::function<bool()> &ShouldStop =
                                  [] { return false; }) {
  std::vector<std::atomic<unsigned>> Hits(NumItems);
  for (auto &H : Hits)
    H = 0;
  ShardScheduler::run(
      NumItems, Workers,
      [&](unsigned W, size_t Item) {
        ASSERT_LT(Item, NumItems);
        ASSERT_LT(W, Workers == 0 ? 1u : Workers);
        Hits[Item].fetch_add(1, std::memory_order_relaxed);
      },
      ShouldStop);
  std::vector<unsigned> Out(NumItems);
  for (size_t I = 0; I != NumItems; ++I)
    Out[I] = Hits[I].load();
  return Out;
}

TEST(ShardSchedulerTest, EveryShapeRunsEachItemExactlyOnce) {
  // (items, workers) shapes: empty wave, single item vs many workers,
  // workers > items, items == workers (all single-shard ranges), primes
  // that leave ragged remainders, and a plain large wave.
  const std::pair<size_t, unsigned> Shapes[] = {
      {0, 1},  {0, 8},   {1, 1},  {1, 8},  {3, 16}, {5, 3},
      {7, 7},  {13, 5},  {64, 5}, {97, 8}, {2, 2},  {6, 4},
  };
  for (const auto &[Items, Workers] : Shapes) {
    std::vector<unsigned> Hits = runWave(Items, Workers);
    for (size_t I = 0; I != Items; ++I)
      EXPECT_EQ(Hits[I], 1u) << "items=" << Items << " workers=" << Workers
                             << " item=" << I;
  }
}

TEST(ShardSchedulerTest, JobsGreaterThanWaveSizeClampsWorkerIds) {
  // 16 workers over 3 items: worker ids visible to Body must stay below
  // the clamped count, or per-worker state arrays would overflow.
  std::atomic<unsigned> MaxWorker{0};
  ShardScheduler::run(
      3, 16,
      [&](unsigned W, size_t) {
        unsigned Cur = MaxWorker.load();
        while (W > Cur && !MaxWorker.compare_exchange_weak(Cur, W))
          ;
      },
      [] { return false; });
  EXPECT_LT(MaxWorker.load(), 3u);
}

TEST(ShardSchedulerTest, SingleShardRangesStealCleanly) {
  // items == workers gives every worker a length-1 range; a straggler on
  // item 0 forces the finished workers through the steal path against
  // ranges that are empty or length 1 -- historically the fiddliest
  // configuration. Every item must still run exactly once.
  constexpr size_t N = 8;
  std::vector<std::atomic<unsigned>> Hits(N);
  for (auto &H : Hits)
    H = 0;
  ShardScheduler::run(
      N, unsigned(N),
      [&](unsigned, size_t Item) {
        if (Item == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        Hits[Item].fetch_add(1, std::memory_order_relaxed);
      },
      [] { return false; });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "item " << I;
}

TEST(ShardSchedulerTest, StopIsHonouredBetweenItems) {
  // Once ShouldStop flips, no *new* items start; items already running
  // finish. With the flip after the 5th completion, the total must land
  // in [5, 5 + workers] and far below the wave size.
  constexpr size_t N = 10000;
  constexpr unsigned Workers = 4;
  std::atomic<size_t> Started{0};
  std::atomic<bool> Stop{false};
  ShardScheduler::run(
      N, Workers,
      [&](unsigned, size_t) {
        if (Started.fetch_add(1) + 1 >= 5)
          Stop.store(true);
      },
      [&] { return Stop.load(); });
  EXPECT_GE(Started.load(), 5u);
  EXPECT_LE(Started.load(), 5u + Workers);
}

TEST(ShardSchedulerTest, StopBeforeStartRunsNothing) {
  std::vector<unsigned> Hits = runWave(50, 4, [] { return true; });
  for (unsigned H : Hits)
    EXPECT_EQ(H, 0u);
}

TEST(ShardSchedulerTest, ZeroWorkersFallsBackToSequential) {
  // Workers=0 is "caller resolved jobs wrong"; the scheduler treats it
  // as sequential rather than hanging or crashing.
  std::vector<unsigned> Hits = runWave(5, 0);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_EQ(Hits[I], 1u);
}

} // namespace

//===--- pipeline_test.cpp - Paper-claim integration tests ----------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests pinned to the paper's claims (artefact appendix §F):
///  claim 1/2: Fig. 7's LB behaviour appears when compiled for AArch64;
///  claim 4:  positive differences vanish under rc11+lb;
///  claim 5:  optimised Fig. 11 simulates quickly, unoptimised does not;
///  plus the §IV-B/-C/-E bug reproductions.
///
//===----------------------------------------------------------------------===//

#include "asmcore/Semantics.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

Profile llvmO3A64() {
  return Profile::current(CompilerKind::Llvm, OptLevel::O3, Arch::AArch64);
}

} // namespace

TEST(PaperClaim1, Fig7HasFig8Outcomes) {
  TelechatResult R = runTelechat(paperFig7(), llvmO3A64());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.SourceSim.Allowed.size(), 3u); // Fig. 8 left
  EXPECT_EQ(R.TargetSim.Allowed.size(), 4u); // Fig. 8 right
  ASSERT_EQ(R.Compare.K, CompareResult::Kind::Positive);
  ASSERT_EQ(R.Compare.Witnesses.size(), 1u);
  Outcome Expected;
  Expected.set("[obs_P0_r0]", Value(1));
  Expected.set("[obs_P1_r0]", Value(1));
  EXPECT_EQ(R.Compare.Witnesses[0], Expected);
}

TEST(PaperClaim2, LbBehaviourFoundDeterministically) {
  TelechatResult A = runTelechat(paperFig7(), llvmO3A64());
  TelechatResult B = runTelechat(paperFig7(), llvmO3A64());
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_TRUE(A.isBug());
  EXPECT_EQ(A.TargetSim.Allowed, B.TargetSim.Allowed);
}

TEST(PaperClaim4, PositiveDifferencesVanishUnderRc11Lb) {
  TestOptions O;
  O.SourceModel = "rc11+lb";
  for (const char *Name : {"LB", "LB+ctrls"}) {
    for (Arch A : AllArchs) {
      TelechatResult R = runTelechat(
          classicTest(Name), Profile::current(CompilerKind::Gcc,
                                              OptLevel::O1, A),
          O);
      ASSERT_TRUE(R.ok()) << R.Error;
      EXPECT_FALSE(R.isBug()) << Name << " on " << archName(A);
    }
  }
}

TEST(PaperClaim5, OptimisedFig11TerminatesUnoptimisedDoesNot) {
  TestOptions Fast;
  Fast.Sim.MaxSteps = 400'000;
  TelechatResult Optimised = runTelechat(paperFig11(), llvmO3A64(), Fast);
  ASSERT_TRUE(Optimised.ok()) << Optimised.Error;
  EXPECT_FALSE(Optimised.timedOut());
  EXPECT_LT(Optimised.TargetSim.Stats.Seconds, 5.0);

  TestOptions Raw = Fast;
  Raw.OptimiseCompiled = false;
  TelechatResult Unoptimised = runTelechat(paperFig11(), llvmO3A64(), Raw);
  ASSERT_TRUE(Unoptimised.ok()) << Unoptimised.Error;
  EXPECT_TRUE(Unoptimised.timedOut())
      << "the unoptimised compiled test should exhaust the budget";
}

TEST(PaperSectionIVB, Fig10HeisenbugLifecycle) {
  // Buggy era: found; observing r1: masked; today: fixed.
  TelechatResult Buggy =
      runTelechat(paperFig10(), Profile::llvmOldLse(OptLevel::O2));
  ASSERT_TRUE(Buggy.ok()) << Buggy.Error;
  EXPECT_TRUE(Buggy.isBug());
  Outcome Witness;
  Witness.set("[obs_P1_r0]", Value(0));
  Witness.set("[y]", Value(2));
  ASSERT_FALSE(Buggy.Compare.Witnesses.empty());
  EXPECT_EQ(Buggy.Compare.Witnesses[0], Witness);

  Profile Fixed = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                   Arch::AArch64);
  Fixed.Features.Lse = true;
  TelechatResult Clean = runTelechat(paperFig10(), Fixed);
  ASSERT_TRUE(Clean.ok()) << Clean.Error;
  EXPECT_FALSE(Clean.isBug());
}

TEST(PaperSectionIVB, Fig1ExchangeBug) {
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  P.Features.Lse = true;
  P.Bugs.XchgNoRet = true;
  TelechatResult R = runTelechat(paperFig1(), P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.isBug());
  P.Bugs.XchgNoRet = false;
  TelechatResult Fixed = runTelechat(paperFig1(), P);
  ASSERT_TRUE(Fixed.ok()) << Fixed.Error;
  EXPECT_FALSE(Fixed.isBug());
}

TEST(PaperSectionIVE, Armv7ModelBugVisibleOnSB) {
  LitmusTest SB = classicTest("SB+scs");
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2,
                               Arch::Armv7);
  TelechatResult R = runTelechat(SB, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.isBug()) << "fixed Armv7 model must be clean";
  // Re-simulate the compiled test under the buggy model.
  ErrorOr<SimProgram> L = lowerAsmTest(R.OptAsm);
  ASSERT_TRUE(L.hasValue()) << L.error();
  SimResult Buggy = simulateProgram(*L, "armv7-buggy");
  ASSERT_TRUE(Buggy.ok()) << Buggy.Error;
  CompareResult C = mcompare(R.SourceSim, Buggy, R.Compiled.KeyMap);
  EXPECT_EQ(C.K, CompareResult::Kind::Positive)
      << "the pre-fix model lets the SB outcome through";
}

TEST(PaperSectionIVE, ConstViolationNeedsAugmentedModel) {
  auto T = parseLitmusC(R"(C c128
{ const __int128 *c = 5; }
void P0(atomic_int128* c) {
  int r0 = atomic_load_explicit(c, memory_order_seq_cst);
}
exists (P0:r0=5)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64); // v8.0: LDXP/STXP loop
  TestOptions Plain;
  TelechatResult Missed = runTelechat(*T, P, Plain);
  ASSERT_TRUE(Missed.ok()) << Missed.Error;
  EXPECT_TRUE(Missed.Compare.TargetFlags.empty());
  TestOptions Augmented;
  Augmented.ConstAugmentedModel = true;
  TelechatResult Caught = runTelechat(*T, P, Augmented);
  ASSERT_TRUE(Caught.ok()) << Caught.Error;
  EXPECT_EQ(Caught.Compare.TargetFlags,
            std::vector<std::string>{"const-violation"});
}

TEST(PaperSectionIVF, LdaprMappingSafeOnAcquireCorpus) {
  Profile Ldapr = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                                   Arch::AArch64);
  Ldapr.Features.Rcpc = true;
  for (const char *Name : {"MP+rel+acq", "SB+scs", "LB+rel+acq"}) {
    TelechatResult R = runTelechat(classicTest(Name), Ldapr);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Error;
    EXPECT_FALSE(R.isBug()) << Name;
  }
}

TEST(PaperTableIV, Armv7GccO1ControlDependencyAnomaly) {
  // The 3480-vs-2352 cell: gcc -O1 on Armv7 merges identical-store
  // diamonds, dropping the control dependency.
  LitmusTest T = classicTest("LB+ctrls");
  TelechatResult GccO1 = runTelechat(
      T, Profile::current(CompilerKind::Gcc, OptLevel::O1, Arch::Armv7));
  TelechatResult GccO2 = runTelechat(
      T, Profile::current(CompilerKind::Gcc, OptLevel::O2, Arch::Armv7));
  TelechatResult LlvmO1 = runTelechat(
      T, Profile::current(CompilerKind::Llvm, OptLevel::O1, Arch::Armv7));
  ASSERT_TRUE(GccO1.ok() && GccO2.ok() && LlvmO1.ok());
  EXPECT_TRUE(GccO1.isBug()) << "ctrl dep removed at -O1";
  EXPECT_FALSE(GccO2.isBug()) << "masked by the data dependency at -O2";
  EXPECT_FALSE(LlvmO1.isBug()) << "llvm keeps the branch";
}

TEST(PaperTableIV, StrongArchitecturesShowNoPositives) {
  for (const char *Name : {"LB", "SB", "MP", "2+2W"}) {
    for (Arch A : {Arch::X86_64, Arch::Mips}) {
      TelechatResult R = runTelechat(
          classicTest(Name),
          Profile::current(CompilerKind::Llvm, OptLevel::O3, A));
      ASSERT_TRUE(R.ok()) << R.Error;
      EXPECT_FALSE(R.isBug()) << Name << " on " << archName(A);
    }
  }
}

TEST(PipelineRobustness, TimeoutsAreReportedNotFatal) {
  TestOptions O;
  O.Sim.MaxSteps = 10;
  TelechatResult R = runTelechat(classicTest("IRIW"), llvmO3A64(), O);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.timedOut());
  EXPECT_FALSE(R.isBug());
}

TEST(PipelineRobustness, EveryArchCompilesTheWholeClassicSuite) {
  for (const std::string &Name : classicNames()) {
    for (Arch A : AllArchs) {
      ErrorOr<CompileOutput> Out = compileLitmus(
          augmentLocalObservations(classicTest(Name)),
          Profile::current(CompilerKind::Gcc, OptLevel::O2, A));
      EXPECT_TRUE(Out.hasValue())
          << Name << " on " << archName(A) << ": " << Out.error();
    }
  }
}

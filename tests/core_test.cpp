//===--- core_test.cpp - Télétchat pipeline tests -------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "asmcore/Semantics.h"
#include "core/Telechat.h"
#include "diy/Classics.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(AugmentationTest, AddsGlobalsAndRewritesPredicate) {
  LitmusTest T = classicTest("MP");
  size_t Locs = T.Locations.size();
  LitmusTest A = augmentLocalObservations(T);
  EXPECT_EQ(A.Locations.size(), Locs + 2);
  // Predicate no longer names registers.
  std::vector<std::string> Keys;
  A.Final.P.collectKeys(Keys);
  for (const std::string &K : Keys)
    EXPECT_EQ(K.front(), '[') << K;
  EXPECT_TRUE(A.validate().empty()) << A.validate();
}

TEST(AugmentationTest, NoObservedRegistersIsIdentity) {
  LitmusTest T = classicTest("2+2W"); // predicate over locations only
  LitmusTest A = augmentLocalObservations(T);
  EXPECT_EQ(A.Locations.size(), T.Locations.size());
}

TEST(AugmentationTest, PreservesSourceOutcomesModuloRenaming) {
  LitmusTest T = classicTest("MP");
  SimResult Plain = simulateC(T, "rc11");
  SimResult Augmented = simulateC(augmentLocalObservations(T), "rc11");
  ASSERT_TRUE(Plain.ok() && Augmented.ok());
  EXPECT_EQ(Plain.Allowed.size(), Augmented.Allowed.size());
}

TEST(S2LTest, GotCollapseProducesInitRegs) {
  LitmusTest T = augmentLocalObservations(classicTest("MP"));
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  ErrorOr<CompileOutput> Out = compileLitmus(T, P);
  ASSERT_TRUE(Out.hasValue()) << Out.error();
  S2LStats Stats;
  AsmLitmusTest Opt = optimiseAsmLitmus(Out->Asm, &Stats);
  EXPECT_GT(Stats.RemovedInstructions, 0u);
  EXPECT_GT(Stats.RemovedLocations, 0u);
  bool AnyInitRegs = false;
  for (const AsmThread &Th : Opt.Threads) {
    for (const auto &[Reg, Sym] : Th.InitRegs)
      AnyInitRegs = AnyInitRegs || Reg != "sp";
    for (const AsmInst &I : Th.Code) {
      EXPECT_NE(I.Ops.empty() ? "" : I.Ops[0].Modifier, "got");
      for (const AsmOperand &O : I.Ops)
        EXPECT_NE(O.Reg, "sp") << "stack scaffolding not removed";
    }
  }
  EXPECT_TRUE(AnyInitRegs);
  for (const SimLoc &L : Opt.Locations) {
    EXPECT_NE(L.Name.rfind("got.", 0), 0u) << L.Name;
    EXPECT_NE(L.Name.rfind("stack.", 0), 0u) << L.Name;
  }
}

TEST(S2LTest, LabelsSurviveInstructionRemoval) {
  // An LL/SC loop's backward label must still resolve after optimisation.
  auto T = parseLitmusC(R"(C rmwtest
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_seq_cst);
  *x = r0 + 1;
}
exists (x=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  TelechatResult R = runTelechat(
      *T, Profile::current(CompilerKind::Llvm, OptLevel::O2, Arch::AArch64));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.TargetSim.Allowed.empty());
}

TEST(S2LTest, OptimisationPreservesOutcomes) {
  // Soundness of the litmus optimiser: the unoptimised form of anything
  // multi-access explodes (that is the point of §IV-E), so the
  // comparison uses a small message-passing test kept tractable by
  // skipping augmentation (fewer GOT loads).
  auto T = parseLitmusC(R"(C mini
{ *x = 0; *y = 0; }
void P0(atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_release);
}
void P1(atomic_int* x, atomic_int* y) {
  atomic_store_explicit(y, 2, memory_order_relaxed);
}
exists (x=1 /\ y=2)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  TestOptions Optimised;
  Optimised.AugmentLocals = false;
  TestOptions Raw = Optimised;
  Raw.OptimiseCompiled = false;
  Raw.Sim.MaxSteps = 40'000'000;
  TelechatResult A = runTelechat(*T, P, Optimised);
  TelechatResult B = runTelechat(*T, P, Raw);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  ASSERT_FALSE(A.timedOut());
  ASSERT_FALSE(B.timedOut()) << "raise Raw.Sim.MaxSteps";
  EXPECT_EQ(A.TargetSim.Allowed, B.TargetSim.Allowed);
}

TEST(MCompareTest, EqualNegativePositive) {
  SimResult Src, Tgt;
  Outcome A, B;
  A.set("P0:r0", Value(0));
  B.set("P0:r0", Value(1));
  Src.Allowed = {A, B};
  Tgt.Allowed = {A, B};
  std::vector<std::pair<std::string, std::string>> Map = {
      {"P0:r0", "P0:x9"}};
  // Target vocabulary.
  SimResult TgtRenamed;
  for (const Outcome &O : Tgt.Allowed)
    TgtRenamed.Allowed.insert(O.renamed({{"P0:r0", "P0:x9"}}));
  CompareResult Equal = mcompare(Src, TgtRenamed, Map);
  EXPECT_EQ(Equal.K, CompareResult::Kind::Equal);

  SimResult Fewer;
  Fewer.Allowed = {A.renamed({{"P0:r0", "P0:x9"}})};
  EXPECT_EQ(mcompare(Src, Fewer, Map).K, CompareResult::Kind::Negative);

  SimResult Extra = TgtRenamed;
  Outcome C;
  C.set("P0:x9", Value(7));
  Extra.Allowed.insert(C);
  CompareResult Pos = mcompare(Src, Extra, Map);
  EXPECT_EQ(Pos.K, CompareResult::Kind::Positive);
  ASSERT_EQ(Pos.Witnesses.size(), 1u);
  EXPECT_EQ(Pos.Witnesses[0].lookup("P0:r0"), Value(7));
  EXPECT_TRUE(Pos.isBug());
}

TEST(MCompareTest, RaceFilterSuppressesBugs) {
  SimResult Src, Tgt;
  Src.Flags.insert("race");
  Outcome O;
  O.set("[x]", Value(9));
  Tgt.Allowed = {O};
  CompareResult R = mcompare(Src, Tgt, {{"[x]", "[x]"}});
  EXPECT_EQ(R.K, CompareResult::Kind::Positive);
  EXPECT_TRUE(R.SourceRace);
  EXPECT_FALSE(R.isBug());
}

TEST(MCompareTest, ProjectionDropsUnmappedKeys) {
  // Deleted locals vanish from the comparison domain (paper §IV-B).
  SimResult Src, Tgt;
  Outcome S1;
  S1.set("P0:r0", Value(0));
  S1.set("[x]", Value(1));
  Src.Allowed = {S1};
  Outcome T1;
  T1.set("[x]", Value(1)); // register did not survive
  Tgt.Allowed = {T1};
  CompareResult R = mcompare(Src, Tgt, {{"[x]", "[x]"}});
  EXPECT_EQ(R.K, CompareResult::Kind::Equal);
}

TEST(PipelineTest, ArtefactsArePopulated) {
  TelechatResult R = runTelechat(
      classicTest("MP+rel+acq"),
      Profile::current(CompilerKind::Gcc, OptLevel::O2, Arch::AArch64));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.RawAsmText.empty());
  EXPECT_FALSE(R.OptAsm.Threads.empty());
  EXPECT_FALSE(R.SourceSim.Allowed.empty());
  EXPECT_FALSE(R.TargetSim.Allowed.empty());
  EXPECT_GT(R.OptStats.RemovedInstructions, 0u);
}

namespace {

struct SoundnessCase {
  std::string Classic;
  Arch Target;
  CompilerKind Compiler;
};

/// Compiler soundness sweep: under the true C/C++ oracle (rc11+lb, since
/// ISO permits load buffering), a bug-free compiler must never produce a
/// positive difference. This is the repository's metamorphic self-check.
class SoundnessSweepTest : public testing::TestWithParam<SoundnessCase> {};

} // namespace

TEST_P(SoundnessSweepTest, NoPositiveDifferenceUnderIsoOracle) {
  const SoundnessCase &C = GetParam();
  TestOptions O;
  O.SourceModel = "rc11+lb";
  TelechatResult R = runTelechat(
      classicTest(C.Classic), Profile::current(C.Compiler, OptLevel::O2,
                                               C.Target),
      O);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_FALSE(R.timedOut());
  EXPECT_FALSE(R.isBug())
      << C.Classic << " on " << archName(C.Target) << ": "
      << (R.Compare.Witnesses.empty()
              ? ""
              : R.Compare.Witnesses.front().toString());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, SoundnessSweepTest, [] {
      std::vector<SoundnessCase> Cases;
      for (const std::string &Name :
           {"MP", "MP+rel+acq", "MP+fences", "SB", "SB+scs", "LB",
            "LB+datas", "LB+ctrls", "R", "S", "2+2W", "WRC", "CoRR"})
        for (Arch A : AllArchs)
          for (CompilerKind C : {CompilerKind::Llvm, CompilerKind::Gcc})
            Cases.push_back({Name, A, C});
      return testing::ValuesIn(Cases);
    }(),
    [](const testing::TestParamInfo<SoundnessCase> &Info) {
      std::string Name = Info.param.Classic + "_" +
                         archName(Info.param.Target) + "_" +
                         compilerKindName(Info.param.Compiler);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

namespace {

/// Under RC11, LB-family tests must show positive differences exactly on
/// the load-buffering-capable architectures.
class LbPositiveTest : public testing::TestWithParam<Arch> {};

} // namespace

TEST_P(LbPositiveTest, PositiveExactlyOnWeakArchitectures) {
  Arch A = GetParam();
  TelechatResult R = runTelechat(
      classicTest("LB"),
      Profile::current(CompilerKind::Llvm, OptLevel::O2, A));
  ASSERT_TRUE(R.ok()) << R.Error;
  bool WeakArch = A == Arch::AArch64 || A == Arch::Armv7 ||
                  A == Arch::RiscV || A == Arch::Ppc;
  EXPECT_EQ(R.isBug(), WeakArch) << archName(A);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, LbPositiveTest,
                         testing::ValuesIn(AllArchs),
                         [](const testing::TestParamInfo<Arch> &Info) {
                           std::string Name = archName(Info.param);
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(PipelineTest, DisassemblyRoundTripFailurePropagates) {
  // Corrupting the raw asm must surface as an error, not a crash.
  LitmusTest T = classicTest("MP");
  Profile P = Profile::current(CompilerKind::Llvm, OptLevel::O2,
                               Arch::AArch64);
  ErrorOr<CompileOutput> Out = compileLitmus(T, P);
  ASSERT_TRUE(Out.hasValue());
  AsmLitmusTest Broken = Out->Asm;
  // Insert before the body (anything after `ret` would be unreachable
  // and never lowered).
  Broken.Threads[0].Code.insert(Broken.Threads[0].Code.begin(),
                                AsmInst("bogus_insn", {}));
  // Parses (unknown mnemonics are syntactically fine) but fails to lower.
  ErrorOr<AsmLitmusTest> Round = disassemblyRoundTrip(Broken);
  ASSERT_TRUE(Round.hasValue()) << Round.error();
  ErrorOr<SimProgram> Lowered = lowerAsmTest(*Round);
  EXPECT_FALSE(Lowered.hasValue());
}

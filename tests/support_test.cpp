//===--- support_test.cpp - Bitset and Relation tests ---------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"
#include "support/Relation.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include <atomic>
#include <random>

using namespace telechat;

TEST(BitsetTest, EmptyAndSize) {
  Bitset B(10);
  EXPECT_EQ(B.universeSize(), 10u);
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.count(), 0u);
}

TEST(BitsetTest, SetTestReset) {
  Bitset B(70); // spans two words
  B.set(0);
  B.set(69);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(69));
  EXPECT_FALSE(B.test(35));
  EXPECT_EQ(B.count(), 2u);
  B.reset(0);
  EXPECT_FALSE(B.test(0));
}

TEST(BitsetTest, AllAndComplement) {
  Bitset B = Bitset::all(65);
  EXPECT_EQ(B.count(), 65u);
  Bitset C = B.complement();
  EXPECT_TRUE(C.empty());
  Bitset D(65);
  D.set(3);
  EXPECT_EQ(D.complement().count(), 64u);
  EXPECT_FALSE(D.complement().test(3));
}

TEST(BitsetTest, SetAlgebra) {
  Bitset A(8), B(8);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  EXPECT_EQ((A | B).count(), 3u);
  EXPECT_EQ((A & B).count(), 1u);
  EXPECT_TRUE((A & B).test(2));
  EXPECT_EQ((A - B).count(), 1u);
  EXPECT_TRUE((A - B).test(1));
}

TEST(BitsetTest, ForEachInOrder) {
  Bitset B(100);
  B.set(5);
  B.set(64);
  B.set(99);
  std::vector<unsigned> Seen;
  B.forEach([&](unsigned I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{5, 64, 99}));
  EXPECT_EQ(B.elements(), Seen);
}

TEST(RelationTest, Identity) {
  Relation R = Relation::identity(5);
  EXPECT_EQ(R.count(), 5u);
  EXPECT_TRUE(R.test(3, 3));
  EXPECT_FALSE(R.test(3, 4));
  EXPECT_FALSE(R.isIrreflexive());
}

TEST(RelationTest, FullHasAllPairs) {
  Relation R = Relation::full(7);
  EXPECT_EQ(R.count(), 49u);
}

TEST(RelationTest, Cross) {
  Bitset A(6), B(6);
  A.set(0);
  A.set(1);
  B.set(4);
  Relation R = Relation::cross(A, B);
  EXPECT_EQ(R.count(), 2u);
  EXPECT_TRUE(R.test(0, 4));
  EXPECT_TRUE(R.test(1, 4));
}

TEST(RelationTest, IdentityOn) {
  Bitset S(6);
  S.set(2);
  S.set(5);
  Relation R = Relation::identityOn(S);
  EXPECT_EQ(R.count(), 2u);
  EXPECT_TRUE(R.test(2, 2));
  EXPECT_TRUE(R.test(5, 5));
}

TEST(RelationTest, SeqComposition) {
  Relation A(4), B(4);
  A.set(0, 1);
  B.set(1, 2);
  B.set(1, 3);
  Relation C = A.seq(B);
  EXPECT_EQ(C.count(), 2u);
  EXPECT_TRUE(C.test(0, 2));
  EXPECT_TRUE(C.test(0, 3));
}

TEST(RelationTest, Inverse) {
  Relation A(3);
  A.set(0, 2);
  Relation Inv = A.inverse();
  EXPECT_TRUE(Inv.test(2, 0));
  EXPECT_EQ(Inv.count(), 1u);
}

TEST(RelationTest, TransitiveClosureChain) {
  Relation A(5);
  A.set(0, 1);
  A.set(1, 2);
  A.set(2, 3);
  Relation C = A.transitiveClosure();
  EXPECT_TRUE(C.test(0, 3));
  EXPECT_TRUE(C.test(1, 3));
  EXPECT_FALSE(C.test(3, 0));
  EXPECT_EQ(C.count(), 6u);
}

TEST(RelationTest, AcyclicityDetectsCycle) {
  Relation A(3);
  A.set(0, 1);
  A.set(1, 2);
  EXPECT_TRUE(A.isAcyclic());
  A.set(2, 0);
  EXPECT_FALSE(A.isAcyclic());
}

TEST(RelationTest, SelfLoopIsCyclic) {
  Relation A(2);
  A.set(1, 1);
  EXPECT_FALSE(A.isAcyclic());
  EXPECT_FALSE(A.isIrreflexive());
}

TEST(RelationTest, DomainRange) {
  Relation A(5);
  A.set(1, 3);
  A.set(1, 4);
  A.set(2, 3);
  EXPECT_EQ(A.domain().elements(), (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(A.range().elements(), (std::vector<unsigned>{3, 4}));
}

TEST(RelationTest, Restricted) {
  Relation A = Relation::full(4);
  Bitset D(4), R(4);
  D.set(0);
  R.set(1);
  R.set(2);
  Relation Out = A.restricted(D, R);
  EXPECT_EQ(Out.count(), 2u);
  EXPECT_TRUE(Out.test(0, 1));
}

TEST(RelationTest, OptionalAddsIdentity) {
  Relation A(3);
  A.set(0, 1);
  Relation O = A.optional();
  EXPECT_EQ(O.count(), 4u);
  EXPECT_TRUE(O.test(2, 2));
}

TEST(RelationTest, EmptyRelationIsAcyclic) {
  EXPECT_TRUE(Relation(6).isAcyclic());
  EXPECT_TRUE(Relation(0).isAcyclic());
}

namespace {

Relation randomRelation(std::mt19937_64 &Rng, unsigned N, double Density) {
  Relation R(N);
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (Dist(Rng) < Density)
        R.set(A, B);
  return R;
}

class RelationPropertyTest : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RelationPropertyTest, ClosureIsIdempotent) {
  std::mt19937_64 Rng(GetParam());
  Relation R = randomRelation(Rng, 24, 0.08);
  Relation C = R.transitiveClosure();
  EXPECT_EQ(C, C.transitiveClosure());
}

TEST_P(RelationPropertyTest, ClosureContainsOriginal) {
  std::mt19937_64 Rng(GetParam());
  Relation R = randomRelation(Rng, 24, 0.1);
  Relation C = R.transitiveClosure();
  EXPECT_EQ(C | R, C);
}

TEST_P(RelationPropertyTest, InverseOfSeq) {
  std::mt19937_64 Rng(GetParam());
  Relation A = randomRelation(Rng, 16, 0.2);
  Relation B = randomRelation(Rng, 16, 0.2);
  // (A;B)^-1 == B^-1 ; A^-1
  EXPECT_EQ(A.seq(B).inverse(), B.inverse().seq(A.inverse()));
}

TEST_P(RelationPropertyTest, DeMorganOnPairs) {
  std::mt19937_64 Rng(GetParam());
  Relation A = randomRelation(Rng, 16, 0.3);
  Relation B = randomRelation(Rng, 16, 0.3);
  // A - B == A & (full - B)
  EXPECT_EQ(A - B, A & (Relation::full(16) - B));
}

TEST_P(RelationPropertyTest, SubrelationOfAcyclicIsAcyclic) {
  std::mt19937_64 Rng(GetParam());
  // Build an acyclic relation (edges only increase), take a subrelation.
  Relation R(20);
  std::uniform_int_distribution<unsigned> Dist(0, 19);
  for (unsigned I = 0; I != 40; ++I) {
    unsigned A = Dist(Rng), B = Dist(Rng);
    if (A < B)
      R.set(A, B);
  }
  ASSERT_TRUE(R.isAcyclic());
  Relation Sub = R & randomRelation(Rng, 20, 0.5);
  EXPECT_TRUE(Sub.isAcyclic());
}

TEST_P(RelationPropertyTest, StarEqualsPlusUnionId) {
  std::mt19937_64 Rng(GetParam());
  Relation R = randomRelation(Rng, 18, 0.1);
  EXPECT_EQ(R.reflexiveTransitiveClosure(),
            R.transitiveClosure() | Relation::identity(18));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(StringUtilsTest, Split) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("z"), "z");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtilsTest, Format) {
  EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strFormat("%s", std::string(300, 'a').c_str()),
            std::string(300, 'a'));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(257);
  for (auto &H : Hits)
    H = 0;
  Pool.parallelFor(Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  ThreadPool Pool(2);
  unsigned Calls = 0;
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
  Pool.parallelFor(1, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitDrains) {
  ThreadPool Pool(3);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    Pool.submit([&Sum, I] { Sum.fetch_add(I); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ResolveJobsSemantics) {
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(7), 7u);
  EXPECT_GE(resolveJobs(0), 1u); // hardware concurrency, at least one
}

TEST(InternerTest, SameContentsSameSymbol) {
  Symbol A = internSymbol("P0:r0");
  Symbol B = internSymbol(std::string("P0:") + "r0");
  EXPECT_EQ(A, B); // Pointer equality: one slot per distinct contents.
  EXPECT_EQ(A.str(), "P0:r0");
  EXPECT_NE(A, internSymbol("P0:r1"));
}

TEST(InternerTest, DefaultSymbolIsEmptyString) {
  Symbol S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S, internSymbol(""));
  EXPECT_EQ(S.str(), "");
}

TEST(InternerTest, OrderingFollowsContentsNotInsertionOrder) {
  // Interning in reverse alphabetical order must not affect ordering:
  // sorted symbol containers have to iterate identically in every
  // process, whatever each one interned first.
  Symbol Z = internSymbol("intern-z");
  Symbol M = internSymbol("intern-m");
  Symbol A = internSymbol("intern-a");
  EXPECT_TRUE(A < M);
  EXPECT_TRUE(M < Z);
  EXPECT_FALSE(Z < A);
  EXPECT_FALSE(A < A);
  std::set<Symbol> Sorted{Z, M, A};
  auto It = Sorted.begin();
  EXPECT_EQ((It++)->str(), "intern-a");
  EXPECT_EQ((It++)->str(), "intern-m");
  EXPECT_EQ((It++)->str(), "intern-z");
}

TEST(InternerTest, ConcurrentInterningAgrees) {
  // 4 threads intern overlapping vocabularies; every thread must get
  // the same symbol for the same string (and TSan must stay quiet).
  constexpr unsigned Threads = 4, Strings = 64;
  std::vector<std::vector<Symbol>> Got(Threads,
                                       std::vector<Symbol>(Strings));
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([T, &Got] {
      for (unsigned I = 0; I != Strings; ++I)
        Got[T][I] = internSymbol("conc-" + std::to_string(I));
    });
  for (std::thread &T : Pool)
    T.join();
  for (unsigned T = 1; T != Threads; ++T)
    for (unsigned I = 0; I != Strings; ++I)
      EXPECT_EQ(Got[0][I], Got[T][I]) << I;
}

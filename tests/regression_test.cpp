//===--- regression_test.cpp - herd-style regression catalog --------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper notes: "We also added a regression suite for the herd
/// tool-suite itself" (§III-D). This is ours: a table-driven catalog of
/// litmus tests with pinned outcome counts and witness verdicts per
/// model, so any change to the enumerator, the Cat evaluator or a model
/// that shifts an outcome set fails loudly here.
///
//===----------------------------------------------------------------------===//

#include "litmus/Parser.h"
#include "sim/CFrontend.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

namespace {

struct RegressionCase {
  const char *Name;
  const char *Source;     ///< C litmus text.
  const char *Model;      ///< Registry model name.
  unsigned OutcomeCount;  ///< Expected |allowed outcomes|.
  bool WitnessAllowed;    ///< Expected exists-clause verdict.
};

// Shared test bodies.
const char *MpRelAcq = R"(C mp
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_release);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\ P1:r1=0)
)";

const char *MpRlx = R"(C mprlx
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\ P1:r1=0)
)";

const char *SbSc = R"(C sbsc
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
  int r0 = atomic_load_explicit(y, memory_order_seq_cst);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_seq_cst);
  int r0 = atomic_load_explicit(x, memory_order_seq_cst);
}
exists (P0:r0=0 /\ P1:r0=0)
)";

const char *SbRel = R"(C sbrel
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_release);
  int r0 = atomic_load_explicit(y, memory_order_acquire);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_release);
  int r0 = atomic_load_explicit(x, memory_order_acquire);
}
exists (P0:r0=0 /\ P1:r0=0)
)";

const char *CoWw = R"(C coww
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
exists (x=1)
)";

const char *CoRw = R"(C corw
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1)
)";

const char *RmwPair = R"(C rmwpair
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r0=1)
)";

const char *XchgChain = R"(C xchgchain
{ *x = 0; }
void P0(atomic_int* x) {
  int r0 = atomic_exchange_explicit(x, 1, memory_order_relaxed);
}
void P1(atomic_int* x) {
  int r0 = atomic_exchange_explicit(x, 2, memory_order_relaxed);
}
exists (P0:r0=2 /\ P1:r0=1)
)";

const char *FenceSb = R"(C fencesb
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_seq_cst);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_seq_cst);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
)";

const char *ReleaseSequence = R"(C relseq
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_release);
  atomic_fetch_add_explicit(y, 1, memory_order_relaxed);
}
void P1(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=2 /\ P1:r1=0)
)";

const char *BranchOnLoad = R"(C branchy
{ *x = 0; *y = 0; }
void P0(atomic_int* y, atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0) {
    atomic_store_explicit(y, 1, memory_order_relaxed);
  } else {
    atomic_store_explicit(y, 2, memory_order_relaxed);
  }
}
void P1(atomic_int* y, atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (y=1)
)";

const char *SingleThread = R"(C single
{ *x = 0; }
void P0(atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=1)
)";

const RegressionCase Catalog[] = {
    // Message passing with release/acquire *accesses*.
    {"mp_relacq_rc11", MpRelAcq, "rc11", 3, false},
    {"mp_relacq_sc", MpRelAcq, "sc", 3, false},
    {"mp_relacq_rc11lb", MpRelAcq, "rc11+lb", 3, false},
    // Relaxed MP: stale read allowed everywhere except SC.
    {"mp_rlx_rc11", MpRlx, "rc11", 4, true},
    {"mp_rlx_sc", MpRlx, "sc", 3, false},
    {"mp_rlx_c11simp", MpRlx, "c11-simp", 4, true},
    // Store buffering: SC accesses forbid, release/acquire allow.
    {"sb_sc_rc11", SbSc, "rc11", 3, false},
    {"sb_sc_sc", SbSc, "sc", 3, false},
    {"sb_relacq_rc11", SbRel, "rc11", 4, true},
    {"sb_relacq_sc", SbRel, "sc", 3, false},
    // Coherence shapes: total 2 outcomes for CoWW (final x=2 only)...
    {"coww_rc11", CoWw, "rc11", 1, false},
    {"coww_sc", CoWw, "sc", 1, false},
    // ...and a read cannot see a po-later write.
    {"corw_rc11", CoRw, "rc11", 1, false},
    // Concurrent RMWs: r0 values partition {0,1}; (1,1) impossible.
    {"rmwpair_rc11", RmwPair, "rc11", 2, false},
    {"rmwpair_sc", RmwPair, "sc", 2, false},
    // Exchanges cannot both read each other's value.
    {"xchg_rc11", XchgChain, "rc11", 2, false},
    // SC fences restore SB ordering.
    {"fence_sb_rc11", FenceSb, "rc11", 3, false},
    {"fence_sb_rc11lb", FenceSb, "rc11+lb", 3, false},
    // Release sequences: the RMW extends synchronisation, so reading
    // either 1 or 2 synchronises and forces r1=1.
    {"relseq_rc11", ReleaseSequence, "rc11", 4, false},
    // Control flow: y=1 exactly when the load saw the store.
    {"branchy_rc11", BranchOnLoad, "rc11", 2, true},
    {"branchy_sc", BranchOnLoad, "sc", 2, true},
    // Single thread sanity.
    {"single_rc11", SingleThread, "rc11", 1, true},
    {"single_sc", SingleThread, "sc", 1, true},
};

class RegressionTest : public testing::TestWithParam<RegressionCase> {};

} // namespace

TEST_P(RegressionTest, OutcomeSetIsPinned) {
  const RegressionCase &C = GetParam();
  ErrorOr<LitmusTest> T = parseLitmusC(C.Source);
  ASSERT_TRUE(T.hasValue()) << T.error();
  SimProgram P = lowerLitmusC(*T);
  SimResult R = simulateProgram(P, C.Model);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_FALSE(R.TimedOut);
  EXPECT_EQ(R.Allowed.size(), C.OutcomeCount)
      << outcomeSetToString(R.Allowed);
  EXPECT_EQ(finalConditionHolds(P, R), C.WitnessAllowed);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, RegressionTest, testing::ValuesIn(Catalog),
    [](const testing::TestParamInfo<RegressionCase> &Info) {
      return std::string(Info.param.Name);
    });

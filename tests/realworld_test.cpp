//===--- realworld_test.cpp - Real-world kernel suite batteries -----------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The realworld suite's pinning batteries. Three claims are checked
/// over every one of the 250+ instantiations:
///
///   1. The oracle verdicts hold: at sweep points the idiom contract
///      marks Forbidden, no RC11 outcome satisfies the exists-clause;
///      at Observable points some outcome does (the documented weak
///      behaviour).
///   2. The sweep and solve backends produce byte-identical outcome
///      sets at j1 and j4 -- the cross-backend differential gate.
///   3. print -> parse -> print is a fixpoint (the PR 7 width-collapse
///      printer bug would have conflated order/width sweep siblings).
///
/// Plus the canonical-identity properties dedupe relies on: sweep
/// siblings keep distinct CanonKeys, thread permutations collapse, and
/// a doubled corpus behind DedupingUnitSource answers exactly the
/// duplicate half from representatives.
///
//===----------------------------------------------------------------------===//

#include "core/Campaign.h"
#include "diy/RealWorld.h"
#include "litmus/Canon.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "litmus/Snippet.h"
#include "sim/Backend.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace telechat;

namespace {

SimResult runBackend(const LitmusTest &T, SimBackendKind Backend,
                     unsigned Jobs) {
  SimOptions O;
  O.Backend = Backend;
  O.Jobs = Jobs;
  return simulateC(T, "rc11", O);
}

/// Whether some allowed outcome satisfies the test's exists-clause.
bool existsWitnessed(const LitmusTest &T, const SimResult &R) {
  for (const Outcome &O : R.Allowed)
    if (T.Final.P.eval(O))
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Suite shape
//===----------------------------------------------------------------------===//

TEST(RealWorldSuiteTest, ShapeAndAddressing) {
  std::vector<RealWorldCase> Suite = realWorldSuite();
  // The acceptance bar: hundreds of instantiations from six templates.
  EXPECT_GE(Suite.size(), 200u);
  EXPECT_EQ(realWorldFamilies().size(), 6u);

  std::set<std::string> Names;
  std::map<std::string, unsigned> PerFamily;
  for (const RealWorldCase &C : Suite) {
    EXPECT_TRUE(Names.insert(C.Test.Name).second)
        << "duplicate instantiation name " << C.Test.Name;
    EXPECT_EQ(C.Test.validate(), "") << C.Test.Name;
    EXPECT_EQ(C.Test.Final.Q, FinalCond::Quant::Exists) << C.Test.Name;
    ++PerFamily[C.Family];
  }
  for (const std::string &F : realWorldFamilies()) {
    EXPECT_GT(PerFamily[F], 0u) << F;
    ErrorOr<std::vector<RealWorldCase>> Family = realWorldFamily(F);
    ASSERT_TRUE(Family.hasValue()) << F;
    EXPECT_EQ(Family->size(), PerFamily[F]) << F;
  }
  EXPECT_FALSE(realWorldFamily("nosuch").hasValue());

  // Name lookup round-trips through the suite, like classicTest().
  LitmusTest ByName = realWorldTest(Suite.front().Test.Name);
  EXPECT_EQ(printLitmusC(ByName), printLitmusC(Suite.front().Test));

  // realWorldTests()/realWorldNames() mirror the suite in order.
  EXPECT_EQ(realWorldTests().size(), Suite.size());
  std::vector<std::string> AllNames = realWorldNames();
  ASSERT_EQ(AllNames.size(), Suite.size());
  for (size_t I = 0; I != Suite.size(); ++I)
    EXPECT_EQ(AllNames[I], Suite[I].Test.Name);
}

//===----------------------------------------------------------------------===//
// The big battery: verdicts + cross-backend j1/j4 byte-identity +
// printer fixpoint, one pass over every instantiation
//===----------------------------------------------------------------------===//

TEST(RealWorldSuiteTest, VerdictAndCrossBackendBattery) {
  std::vector<RealWorldCase> Suite = realWorldSuite();
  ASSERT_GE(Suite.size(), 200u);

  // One simulation per (case, backend, jobs) spread across the pool;
  // each individual run is j-controlled explicitly, so parallelising
  // across cases does not disturb what is being pinned.
  ThreadPool Pool(0);
  std::vector<std::string> Failures(Suite.size());
  Pool.parallelFor(Suite.size(), [&](size_t I) {
    const RealWorldCase &C = Suite[I];
    const LitmusTest &T = C.Test;
    std::string &Fail = Failures[I];
    auto Check = [&](bool Cond, const std::string &Msg) {
      if (!Cond && Fail.empty())
        Fail = T.Name + ": " + Msg;
    };

    SimResult Sweep1 = runBackend(T, SimBackendKind::Sweep, 1);
    Check(Sweep1.ok(), "sweep j1 error: " + Sweep1.Error);
    Check(!Sweep1.TimedOut, "sweep j1 timeout");
    if (!Fail.empty())
      return;

    // Differential gate: solve and j4 variants byte-identical.
    const std::string Ref = outcomeSetToString(Sweep1.Allowed);
    for (SimBackendKind B : {SimBackendKind::Sweep, SimBackendKind::Solve})
      for (unsigned Jobs : {1u, 4u}) {
        if (B == SimBackendKind::Sweep && Jobs == 1)
          continue;
        SimResult R = runBackend(T, B, Jobs);
        std::string Label = std::string(B == SimBackendKind::Sweep
                                            ? "sweep"
                                            : "solve") +
                            " j" + std::to_string(Jobs);
        Check(R.ok(), Label + " error: " + R.Error);
        Check(outcomeSetToString(R.Allowed) == Ref,
              Label + " outcome set diverges from sweep j1");
        Check(R.Flags == Sweep1.Flags, Label + " flags diverge");
      }

    // Oracle verdicts from the idiom contracts.
    bool Witnessed = existsWitnessed(T, Sweep1);
    if (C.Status == WeakStatus::Forbidden)
      Check(!Witnessed, "forbidden weak outcome is reachable");
    else if (C.Status == WeakStatus::Observable)
      Check(Witnessed, "documented weak outcome was not observed");

    // Printer fixpoint: the printed form reparses to the same print.
    std::string Printed = printLitmusC(T);
    ErrorOr<LitmusTest> Reparsed = parseLitmusC(Printed);
    if (!Reparsed.hasValue()) {
      Check(false, "printed test fails to reparse: " + Reparsed.error());
      return;
    }
    Check(printLitmusC(*Reparsed) == Printed,
          "print -> parse -> print is not a fixpoint");
    Check(Reparsed->Name == T.Name, "name does not survive the round trip");
  });

  unsigned Failed = 0;
  for (const std::string &F : Failures)
    if (!F.empty()) {
      ADD_FAILURE() << F;
      ++Failed;
    }
  EXPECT_EQ(Failed, 0u);

  // The sweep must exercise every verdict class.
  unsigned Forbidden = 0, Observable = 0, Unspecified = 0;
  for (const RealWorldCase &C : Suite)
    (C.Status == WeakStatus::Forbidden
         ? Forbidden
         : C.Status == WeakStatus::Observable ? Observable : Unspecified)++;
  EXPECT_GT(Forbidden, 0u);
  EXPECT_GT(Observable, 0u);
  EXPECT_GT(Unspecified, 0u);
  EXPECT_GT(Forbidden + Observable, Suite.size() / 2);
}

//===----------------------------------------------------------------------===//
// Canonical identity: sweep siblings separate, permutations collapse
//===----------------------------------------------------------------------===//

TEST(RealWorldSuiteTest, OrderSweepSiblingsKeepDistinctCanonKeys) {
  // Orders and widths are identity (the PR 7 printer fix pins widths
  // into the canonical text), so within a family every sweep point must
  // canonicalize apart -- if two collapsed, dedupe would answer one
  // sweep point with another's outcome set and the sweep would be a lie.
  for (const std::string &F : realWorldFamilies()) {
    ErrorOr<std::vector<RealWorldCase>> Family = realWorldFamily(F);
    ASSERT_TRUE(Family.hasValue()) << F;
    std::map<std::string, std::string> TextToName;
    for (const RealWorldCase &C : *Family) {
      CanonResult R = canonicalizeTest(C.Test);
      auto [It, Inserted] = TextToName.emplace(R.Text, C.Test.Name);
      EXPECT_TRUE(Inserted)
          << F << ": " << C.Test.Name << " canonicalizes identically to "
          << It->second;
    }
  }
}

TEST(RealWorldSuiteTest, ThreadPermutedReinstantiationsCollapse) {
  // Re-instantiating a kernel with its threads listed in another order
  // (same bodies, same predicate) is the same test; canonicalization
  // tries every thread permutation, so the keys must match.
  unsigned Checked = 0;
  for (const RealWorldCase &C : realWorldSuite()) {
    if (C.Test.Threads.size() < 2)
      continue;
    LitmusTest Permuted = C.Test;
    std::rotate(Permuted.Threads.begin(), Permuted.Threads.begin() + 1,
                Permuted.Threads.end());
    CanonResult A = canonicalizeTest(C.Test);
    CanonResult B = canonicalizeTest(Permuted);
    EXPECT_EQ(A.Text, B.Text) << C.Test.Name;
    EXPECT_TRUE(A.Key == B.Key) << C.Test.Name;
    ++Checked;
  }
  EXPECT_GE(Checked, 200u);
}

TEST(RealWorldSuiteTest, DedupeAnswersTheDoubledCorpusFromRepresentatives) {
  // A campaign fed the suite twice must simulate each canonical class
  // once: the second copy (and any cross-family coincidences, e.g. an
  // spsc point whose shape equals a flagmsg point at the same orders
  // and widths) comes back as renamed representative results.
  std::vector<LitmusTest> Tests = realWorldTests();
  std::vector<LitmusTest> Doubled = Tests;
  Doubled.insert(Doubled.end(), Tests.begin(), Tests.end());

  std::set<std::string> Classes;
  for (const LitmusTest &T : Tests)
    Classes.insert(canonicalizeTest(T).Text);

  std::vector<CampaignUnit> Units = makeCampaignUnits(Doubled);
  VectorUnitSource Source(std::move(Units));
  DedupingUnitSource Deduper(Source);
  CampaignUnit U;
  std::set<uint64_t> Served;
  while (Deduper.next(U))
    Served.insert(U.Id);

  EXPECT_EQ(Served.size(), Classes.size());
  EXPECT_EQ(Deduper.duplicates().size(), Doubled.size() - Classes.size());
  // Everything in the second copy is by definition a duplicate.
  EXPECT_GE(Deduper.duplicates().size(), Tests.size());
  for (const DedupingUnitSource::Dup &D : Deduper.duplicates()) {
    EXPECT_LT(D.RepId, D.Id);
    EXPECT_TRUE(Served.count(D.RepId))
        << "duplicate " << D.Id << " maps to unserved rep " << D.RepId;
  }
}

//===----------------------------------------------------------------------===//
// Snippet frontend
//===----------------------------------------------------------------------===//

TEST(KernelSnippetTest, ParsesTheDocumentedKernel) {
  const char *Src = R"(kernel spsc_cell
std::atomic<int> widx = 0;
std::atomic<int> slot = 0;
thread P0 {
  slot.store(42, std::memory_order_relaxed);
  widx.store(1, std::memory_order_release);
}
thread P1 {
  int r0 = widx.load(std::memory_order_acquire);
  if (r0) { int r1 = slot.load(std::memory_order_relaxed); }
}
exists (P1:r0=1 && P1:r1=0)
)";
  ErrorOr<LitmusTest> T = parseKernelSnippet(Src);
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Name, "spsc_cell");
  ASSERT_EQ(T->Threads.size(), 2u);
  ASSERT_EQ(T->Locations.size(), 2u);
  EXPECT_EQ(T->Threads[0].Body[1].Order, MemOrder::Release);
  EXPECT_EQ(T->Threads[1].Body[0].Order, MemOrder::Acquire);
  EXPECT_EQ(T->Final.Q, FinalCond::Quant::Exists);
  // The release/acquire handoff forbids the stale read; the parsed
  // kernel must agree with its hand-built rw.spsc sibling.
  SimResult R = runBackend(*T, SimBackendKind::Sweep, 1);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(existsWitnessed(*T, R));
}

TEST(KernelSnippetTest, AcceptsEverySpellingOfOrdersAndSugar) {
  const char *Src = R"(
std::atomic<int8_t> x = 0;
atomic<long> y = 1;
int z = 0;
void P0() {
  x.store(1, memory_order_release);
  y.store(2, std::memory_order::seq_cst);
  int a = x.exchange(3, rl::mo_acq_rel);
  int b = y.fetch_add(1, mo_relaxed);
  y.fetch_sub(1);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  x = 5;
  int c = y;
  z = 7;
  int d = z;
  int e = (a + b) ^ (c & d) - 1;
}
forall (P0:e=0 || x=5)
)";
  ErrorOr<LitmusTest> T = parseKernelSnippet(Src);
  ASSERT_TRUE(T.hasValue()) << T.error();
  EXPECT_EQ(T->Name, "snippet");
  const std::vector<Stmt> &B = T->Threads[0].Body;
  EXPECT_EQ(B[0].Order, MemOrder::Release);
  EXPECT_EQ(B[1].Order, MemOrder::SeqCst);
  EXPECT_EQ(B[2].Order, MemOrder::AcqRel);
  EXPECT_EQ(B[2].Rmw, RmwKind::Xchg);
  EXPECT_EQ(B[3].Order, MemOrder::Relaxed);
  EXPECT_EQ(B[3].Rmw, RmwKind::FetchAdd);
  // Discarded RMW result still lowers to an Rmw with a fresh register.
  EXPECT_EQ(B[4].K, Stmt::Kind::Rmw);
  EXPECT_EQ(B[4].Rmw, RmwKind::FetchSub);
  EXPECT_EQ(B[4].Order, MemOrder::SeqCst); // omitted order = seq_cst
  EXPECT_TRUE(B[4].DstUsedNowhere);
  EXPECT_EQ(B[5].K, Stmt::Kind::Fence);
  // Atomic assignment sugar is seq_cst; plain locations stay NA.
  EXPECT_EQ(B[6].K, Stmt::Kind::Store);
  EXPECT_EQ(B[6].Order, MemOrder::SeqCst);
  EXPECT_EQ(B[7].K, Stmt::Kind::Load);
  EXPECT_EQ(B[7].Order, MemOrder::SeqCst);
  EXPECT_EQ(B[8].Order, MemOrder::NA);
  EXPECT_EQ(B[9].Order, MemOrder::NA);
  EXPECT_EQ(B[10].K, Stmt::Kind::LocalAssign);
  // Declared widths flow through: atomic<int8_t> is 8 bits.
  EXPECT_EQ(T->findLocation("x")->Type.Bits, 8u);
  EXPECT_EQ(T->findLocation("y")->Type.Bits, 64u);
  EXPECT_FALSE(T->findLocation("z")->Atomic);
  EXPECT_EQ(T->Final.Q, FinalCond::Quant::Forall);
}

TEST(KernelSnippetTest, RejectsMalformedKernelsWithLineNumbers) {
  struct BadCase {
    const char *Src;
    const char *Expect; ///< Substring of the error.
  };
  const BadCase Cases[] = {
      {"std::atomic<int> x = 0;\nthread P0 { x.store(1, banana); }\n"
       "exists (x=1)",
       "memory order"},
      {"std::atomic<float> x = 0;\nexists (x=1)", "element type"},
      {"std::atomic<int> x = 0;\nthread P0 { y.store(1); }\nexists (x=1)",
       "not a declared location"},
      {"std::atomic<int> x = 0;\nthread P0 { x.compare_exchange_weak(1); }\n"
       "exists (x=1)",
       "unsupported atomic method"},
      {"std::atomic<int> x = 0;\nthread P0 { int r = x + 1; }\nexists (x=1)",
       "use .load"},
      {"std::atomic<int> x = 0;\nthread P0 { x.store(1); }", "final"},
      {"std::atomic<int> x;\nexists (x=0)", "initial value"},
  };
  for (const BadCase &C : Cases) {
    ErrorOr<LitmusTest> T = parseKernelSnippet(C.Src);
    ASSERT_FALSE(T.hasValue()) << C.Src;
    EXPECT_NE(T.error().find(C.Expect), std::string::npos)
        << "error for\n"
        << C.Src << "\nwas: " << T.error();
  }
  // Line numbers point at the offending line.
  ErrorOr<LitmusTest> T = parseKernelSnippet(
      "std::atomic<int> x = 0;\nthread P0 {\n  x.store(1, nope);\n}\n"
      "exists (x=1)");
  ASSERT_FALSE(T.hasValue());
  EXPECT_NE(T.error().find("line 3"), std::string::npos) << T.error();
}

TEST(KernelSnippetTest, SnippetAndAstBuiltSiblingsCanonicalizeTogether) {
  // The frontend is just another way to spell a LitmusTest: a snippet
  // kernel written to match an AST-built suite instance must land in
  // the same canonical class.
  LitmusTest Ast = realWorldTest("rw.spsc+pub.rel+con.acq+w32");
  const char *Src = R"(
std::atomic<int> cell = 0;
std::atomic<int> ready = 0;
thread W {
  cell.store(1, std::memory_order_relaxed);
  ready.store(1, std::memory_order_release);
}
thread R {
  int seen = ready.load(std::memory_order_acquire);
  if (seen) { int got = cell.load(std::memory_order_relaxed); }
}
exists (R:seen=1 && R:got=0)
)";
  ErrorOr<LitmusTest> Snip = parseKernelSnippet(Src);
  ASSERT_TRUE(Snip.hasValue()) << Snip.error();
  // Different location/thread/register names, same kernel: the
  // canonical texts must coincide.
  EXPECT_EQ(canonicalizeTest(Ast).Text, canonicalizeTest(*Snip).Text);
}

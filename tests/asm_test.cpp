//===--- asm_test.cpp - Assembly substrate tests --------------------------===//
//
// Part of the Télétchat reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "asmcore/AsmParser.h"
#include "asmcore/AsmPrinter.h"
#include "asmcore/Semantics.h"
#include "compiler/Compiler.h"
#include "core/LitmusToC.h"
#include "diy/Classics.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace telechat;

TEST(AsmParserTest, AArch64Operands) {
  auto I = parseAsmInst(Arch::AArch64, "ldr w9, [x8, #8]");
  ASSERT_TRUE(I.hasValue()) << I.error();
  EXPECT_EQ(I->Mnemonic, "ldr");
  ASSERT_EQ(I->Ops.size(), 2u);
  EXPECT_EQ(I->Ops[0].K, AsmOperand::Kind::Reg);
  EXPECT_EQ(I->Ops[1].K, AsmOperand::Kind::Mem);
  EXPECT_EQ(I->Ops[1].Reg, "x8");
  EXPECT_EQ(I->Ops[1].Imm, 8);
}

TEST(AsmParserTest, AArch64Relocations) {
  auto A = parseAsmInst(Arch::AArch64, "adrp x8, :got:x");
  ASSERT_TRUE(A.hasValue()) << A.error();
  EXPECT_EQ(A->Ops[1].Modifier, "got");
  EXPECT_EQ(A->Ops[1].Sym, "x");
  auto B = parseAsmInst(Arch::AArch64, "ldr x8, [x8, :got_lo12:x]");
  ASSERT_TRUE(B.hasValue()) << B.error();
  EXPECT_EQ(B->Ops[1].Modifier, "got_lo12");
  auto C = parseAsmInst(Arch::AArch64, "add x8, x8, #:lo12:x");
  ASSERT_TRUE(C.hasValue()) << C.error();
  EXPECT_EQ(C->Ops[2].Modifier, "lo12");
}

TEST(AsmParserTest, X86RipRelative) {
  auto I = parseAsmInst(Arch::X86_64, "mov eax, [rip+x]");
  ASSERT_TRUE(I.hasValue()) << I.error();
  EXPECT_EQ(I->Ops[1].K, AsmOperand::Kind::Mem);
  EXPECT_EQ(I->Ops[1].Sym, "x");
  auto L = parseAsmInst(Arch::X86_64, "lock xadd [rip+x], eax");
  ASSERT_TRUE(L.hasValue()) << L.error();
  EXPECT_EQ(L->Mnemonic, "lock.xadd");
}

TEST(AsmParserTest, RiscVOffsetBase) {
  auto I = parseAsmInst(Arch::RiscV, "lw a1, 4(a0)");
  ASSERT_TRUE(I.hasValue()) << I.error();
  EXPECT_EQ(I->Ops[1].Reg, "a0");
  EXPECT_EQ(I->Ops[1].Imm, 4);
  auto H = parseAsmInst(Arch::RiscV, "lui a0, %hi(x)");
  ASSERT_TRUE(H.hasValue()) << H.error();
  EXPECT_EQ(H->Ops[1].Modifier, "hi");
  auto F = parseAsmInst(Arch::RiscV, "fence rw, rw");
  ASSERT_TRUE(F.hasValue()) << F.error();
  EXPECT_EQ(F->Ops[0].Sym, "rw");
}

TEST(AsmParserTest, PpcAtModifier) {
  auto I = parseAsmInst(Arch::Ppc, "lis r9, x@ha");
  ASSERT_TRUE(I.hasValue()) << I.error();
  EXPECT_EQ(I->Ops[1].Sym, "x");
  EXPECT_EQ(I->Ops[1].Modifier, "ha");
  auto S = parseAsmInst(Arch::Ppc, "stwcx. r10, 0, r9");
  ASSERT_TRUE(S.hasValue()) << S.error();
  EXPECT_EQ(S->Mnemonic, "stwcx.");
}

TEST(AsmParserTest, LabelsAndImmediates) {
  auto I = parseAsmInst(Arch::AArch64, "cbnz w1, .LP0_0");
  ASSERT_TRUE(I.hasValue()) << I.error();
  EXPECT_EQ(I->Ops[1].K, AsmOperand::Kind::Label);
  auto M = parseAsmInst(Arch::AArch64, "mov w2, #-3");
  ASSERT_TRUE(M.hasValue()) << M.error();
  EXPECT_EQ(M->Ops[1].Imm, -3);
}

TEST(AsmParserTest, RejectsGarbage) {
  EXPECT_FALSE(parseAsmInst(Arch::AArch64, "ldr w9, [x8").hasValue());
  EXPECT_FALSE(parseAsmLitmus("NOARCH test\n{\n}\nexists (x=0)\n")
                   .hasValue());
}

TEST(AsmSemanticsTest, CanonicalRegisters) {
  EXPECT_EQ(instSemantics(Arch::AArch64).canonReg("W9"), "x9");
  EXPECT_EQ(instSemantics(Arch::AArch64).canonReg("xzr"), "");
  EXPECT_EQ(instSemantics(Arch::X86_64).canonReg("eax"), "rax");
  EXPECT_EQ(instSemantics(Arch::X86_64).canonReg("r8d"), "r8");
  EXPECT_EQ(instSemantics(Arch::RiscV).canonReg("zero"), "");
  EXPECT_EQ(instSemantics(Arch::Mips).canonReg("$t1"), "t1");
}

TEST(AsmSemanticsTest, RegisterNameRecognition) {
  EXPECT_TRUE(instSemantics(Arch::AArch64).isRegisterName("x10"));
  EXPECT_FALSE(instSemantics(Arch::AArch64).isRegisterName("ish"));
  EXPECT_TRUE(instSemantics(Arch::RiscV).isRegisterName("a0"));
  EXPECT_FALSE(instSemantics(Arch::RiscV).isRegisterName("x"));
  EXPECT_TRUE(instSemantics(Arch::Ppc).isRegisterName("r31"));
  EXPECT_FALSE(instSemantics(Arch::Ppc).isRegisterName("sync"));
}

TEST(AsmSemanticsTest, UnknownInstructionIsAnError) {
  AsmThread T;
  T.Name = "P0";
  T.Code.push_back(AsmInst("frobnicate", {}));
  auto Paths = enumerateAsmPaths(T, instSemantics(Arch::AArch64));
  ASSERT_FALSE(Paths.hasValue());
  EXPECT_NE(Paths.error().find("unsupported"), std::string::npos);
}

TEST(AsmSemanticsTest, BranchesForkPaths) {
  // cbnz forward: two paths (taken, fall-through).
  auto T = parseAsmLitmus(R"(AArch64 fork
{
  x = 0;
  P0:x1 = &x;
}
P0 {
  ldr w2, [x1]
  cbnz w2, .Lskip
  mov w3, #1
.Lskip:
  ret
}
exists (P0:X3=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  auto Paths =
      enumerateAsmPaths(T->Threads[0], instSemantics(Arch::AArch64));
  ASSERT_TRUE(Paths.hasValue()) << Paths.error();
  EXPECT_EQ(Paths->size(), 2u);
}

TEST(AsmSemanticsTest, ExclusivePairsFormRmw) {
  // Hand-written LL/SC increment; atomicity must forbid the lost update.
  auto T = parseAsmLitmus(R"(AArch64 llsc
{
  x = 0;
  P0:x1 = &x;
  P1:x1 = &x;
}
P0 {
.L0:
  ldxr w2, [x1]
  add w3, w2, #1
  stxr w4, w3, [x1]
  cbnz w4, .L0
  ret
}
P1 {
.L1:
  ldxr w2, [x1]
  add w3, w2, #1
  stxr w4, w3, [x1]
  cbnz w4, .L1
  ret
}
exists ([x]=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  ErrorOr<SimProgram> P = lowerAsmTest(*T);
  ASSERT_TRUE(P.hasValue()) << P.error();
  SimResult R = simulateProgram(*P, "aarch64");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(finalConditionHolds(*P, R)) << "lost update not prevented";
}

TEST(AsmSemanticsTest, InitRegsMaterialiseAddresses) {
  auto T = parseAsmLitmus(R"(AArch64 initregs
{
  x = 7;
  P0:x1 = &x;
}
P0 {
  ldr w2, [x1]
  ret
}
exists (P0:X2=7)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  ErrorOr<SimProgram> P = lowerAsmTest(*T);
  ASSERT_TRUE(P.hasValue()) << P.error();
  SimResult R = simulateProgram(*P, "aarch64");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(*P, R));
}

TEST(AsmSemanticsTest, NoRetTagOnStForms) {
  auto T = parseAsmLitmus(R"(AArch64 stadd
{
  x = 0;
  P0:x1 = &x;
}
P0 {
  mov w2, #1
  stadd w2, [x1]
  ret
}
exists ([x]=1)
)");
  ASSERT_TRUE(T.hasValue()) << T.error();
  ErrorOr<SimProgram> P = lowerAsmTest(*T);
  ASSERT_TRUE(P.hasValue()) << P.error();
  bool SawNoRet = false;
  for (const SimOp &Op : P->Threads[0].Paths[0].Ops)
    if (Op.K == SimOp::Kind::Rmw && Op.NoRet)
      SawNoRet = true;
  EXPECT_TRUE(SawNoRet);
  SimResult R = simulateProgram(*P, "aarch64");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(finalConditionHolds(*P, R));
}

namespace {

struct RoundTripCase {
  std::string Classic;
  Arch Target;
};

class AsmRoundTripTest : public testing::TestWithParam<RoundTripCase> {};

} // namespace

TEST_P(AsmRoundTripTest, CompiledTestsSurviveTextRoundTrip) {
  const RoundTripCase &C = GetParam();
  LitmusTest T = augmentLocalObservations(classicTest(C.Classic));
  Profile P = Profile::current(CompilerKind::Gcc, OptLevel::O2, C.Target);
  ErrorOr<CompileOutput> Out = compileLitmus(T, P);
  ASSERT_TRUE(Out.hasValue()) << Out.error();
  std::string Text = printAsmLitmus(Out->Asm);
  ErrorOr<AsmLitmusTest> Reparsed = parseAsmLitmus(Text);
  ASSERT_TRUE(Reparsed.hasValue()) << Reparsed.error() << "\n" << Text;
  // Printing again must be stable.
  EXPECT_EQ(printAsmLitmus(*Reparsed), Text);
  EXPECT_EQ(Reparsed->Threads.size(), Out->Asm.Threads.size());
  for (size_t I = 0; I != Reparsed->Threads.size(); ++I)
    EXPECT_EQ(Reparsed->Threads[I].Code.size(),
              Out->Asm.Threads[I].Code.size());
}

INSTANTIATE_TEST_SUITE_P(
    ClassicsTimesArchs, AsmRoundTripTest,
    testing::Values(RoundTripCase{"MP+rel+acq", Arch::AArch64},
                    RoundTripCase{"MP+rel+acq", Arch::Armv7},
                    RoundTripCase{"MP+rel+acq", Arch::X86_64},
                    RoundTripCase{"MP+rel+acq", Arch::RiscV},
                    RoundTripCase{"MP+rel+acq", Arch::Ppc},
                    RoundTripCase{"MP+rel+acq", Arch::Mips},
                    RoundTripCase{"LB+ctrls", Arch::AArch64},
                    RoundTripCase{"LB+ctrls", Arch::Armv7},
                    RoundTripCase{"LB+ctrls", Arch::X86_64},
                    RoundTripCase{"LB+ctrls", Arch::RiscV},
                    RoundTripCase{"LB+ctrls", Arch::Ppc},
                    RoundTripCase{"LB+ctrls", Arch::Mips},
                    RoundTripCase{"SB+scs", Arch::AArch64},
                    RoundTripCase{"SB+scs", Arch::X86_64},
                    RoundTripCase{"IRIW", Arch::Ppc}),
    [](const testing::TestParamInfo<RoundTripCase> &Info) {
      std::string Name = Info.param.Classic + "_" +
                         archName(Info.param.Target);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(AsmProgramTest, ArchModelNames) {
  EXPECT_EQ(archModelName(Arch::AArch64), "aarch64");
  EXPECT_EQ(archModelName(Arch::AArch64, true), "aarch64+const");
  EXPECT_EQ(archModelName(Arch::Mips), "mips");
}

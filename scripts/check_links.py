#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Scans every *.md file in the repository for inline links and validates
the relative ones: the target file must exist, and a #fragment pointing
into a markdown file must match a heading's GitHub-style anchor.
External (scheme://) and mailto links are ignored -- CI must not depend
on network reachability. Exits non-zero listing every broken link.

Usage: python3 scripts/check_links.py [repo-root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, spaces
    become hyphens. Good enough for ASCII docs."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(md_path: str) -> set:
    anchors = set()
    seen = {}
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            a = github_anchor(m.group(1))
            n = seen.get(a, 0)
            seen[a] = n + 1
            anchors.add(a if n == 0 else f"{a}-{n}")
    return anchors


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", ".claude"} and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(md_path: str):
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for rx in (LINK_RE, IMAGE_RE):
                for m in rx.finditer(line):
                    yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for md in md_files(root):
        for lineno, target in links_in(md):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # external scheme (https:, mailto:, ...)
            checked += 1
            path_part, _, fragment = target.partition("#")
            rel = os.path.relpath(md, root)
            if not path_part:
                dest = md  # pure in-file fragment
            else:
                base = root if path_part.startswith("/") else os.path.dirname(md)
                dest = os.path.normpath(
                    os.path.join(base, path_part.lstrip("/")))
                if not os.path.exists(dest):
                    errors.append(f"{rel}:{lineno}: broken link: {target}")
                    continue
            if fragment and dest.endswith(".md") and os.path.isfile(dest):
                if github_anchor(fragment) not in anchors_of(dest):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor #{fragment} "
                        f"in {os.path.relpath(dest, root)}")
    for e in sorted(errors):
        print(e)
    print(f"checked {checked} intra-repo links: "
          f"{'OK' if not errors else f'{len(errors)} broken'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
